//! The PD² multiprocessor simulation engine with adaptive reweighting.
//!
//! One [`Engine`] simulates an adaptable (AIS) task system slot by slot
//! on `M` processors under PD², enacting reweighting requests with the
//! fine-grained O/I rules, the coarse-grained leave/join rules, or a
//! hybrid of the two (see [`crate::reweight`]).
//!
//! ## Slot pipeline
//!
//! Each slot `t` is processed in a fixed order that mirrors the paper's
//! conventions (all changes happen at slot boundaries):
//!
//! 1. **Joins/leaves** whose time is `t`.
//! 2. **Enactments** scheduled for `t` (weight changes whose rules
//!    resolved to "enact at `t`"): the scheduling weight changes and the
//!    era-opening subtask is queued for release at `t`.
//! 3. **Initiations** at `t`: the reweighting rules run; they may halt
//!    the last-released subtask (rule O), enact immediately (rule I for
//!    increases; rule O/case-b when the wait has already elapsed), or
//!    park a pending change that waits on an `I_SW` completion.
//! 4. **Releases** due at `t`: subtask windows are fixed (Eqns (2)–(3)),
//!    the ready queue learns about new heads, and era-opening releases
//!    record a drift sample (Eqn (5) evaluates exactly here).
//! 5. **Selection**: up to `M` live subtasks leave the ready queue in
//!    PD² priority order; processors are assigned with a
//!    migration-minimizing pass.
//! 6. **Ideal advance**: `I_SW`/`I_PS` trackers accrue slot `t`;
//!    completions can fire pending rule-O/I waits (which then enact at
//!    `max(t_c, D + b)` in a later slot's step 2).
//! 7. **Miss check**: any released, unhalted, unscheduled subtask whose
//!    deadline is `t + 1` is recorded as a miss (Theorem 2: never under
//!    PD²-OI with admission policing).

use crate::admission::{AdmissionController, AdmissionPolicy};
use crate::calendar::CalendarRing;
use crate::event::{Event, EventKind, Workload};
use crate::overhead::Counters;
use crate::priority::{Priority, TieBreak, TieTable};
use crate::queue::{compaction_threshold, QueueEntry, ReadyQueue};
use crate::reweight::{RuleChoice, RuleSelector, Scheme};
use crate::trace::{Miss, SimResult, SubtaskRecord, TaskHistory, TaskResult};
use pfair_core::drift::DriftTrack;
use pfair_core::ideal::{IswTracker, PsTracker};
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::{slot_index, Slot, NEVER};
use pfair_core::weight::Weight;
use pfair_core::window::{SubtaskWindow, WindowCache};
use pfair_obs::{NoopProbe, Probe, ReleaseRec, ReweightCost, Rule};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

mod busy_span;
mod persist;
mod slab;
pub use persist::EngineSnapshot;
use slab::TaskSlab;

/// Static configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of processors `M`.
    pub processors: u32,
    /// Number of slots to simulate.
    pub horizon: Slot,
    /// Reweighting scheme (OI, LJ, or hybrid).
    pub scheme: Scheme,
    /// Resolution of PD² priority ties.
    pub tie_break: TieBreak,
    /// Condition-(W) policing.
    pub admission: AdmissionPolicy,
    /// Retain full subtask traces and per-slot ideal series.
    pub record_history: bool,
    /// Closed-form slot batching: advance over quiet spans (empty ready
    /// queue, no event due) in one jump instead of per-slot pipeline
    /// iterations. Output is bit-identical to the per-slot oracle —
    /// probes included, since batched spans replay the per-slot hooks —
    /// so this is on by default; disable via [`SimConfig::per_slot`] to
    /// run the oracle. History runs always use the per-slot path (the
    /// per-slot ideal series must be materialized anyway).
    pub tickless: bool,
    /// Steady busy-span batching on top of the tickless driver: when
    /// the engine detects that the whole system is repeating with a
    /// common period (no event due, every queued task's windows
    /// recurring), it verifies one full period against the per-slot
    /// oracle and then enacts the remaining whole periods up to the
    /// next event boundary in closed form. Only engaged under the
    /// no-op probe (a probed run must emit every per-slot hook);
    /// output is bit-identical either way. Disable via
    /// [`SimConfig::without_busy_span`] to benchmark the plain
    /// tickless driver.
    pub busy_span: bool,
}

impl SimConfig {
    /// A PD²-OI configuration with policing and default tie-breaks.
    pub fn oi(processors: u32, horizon: Slot) -> SimConfig {
        SimConfig {
            processors,
            horizon,
            scheme: Scheme::Oi,
            tie_break: TieBreak::default(),
            admission: AdmissionPolicy::Police,
            record_history: false,
            tickless: true,
            busy_span: true,
        }
    }

    /// A PD²-LJ configuration with policing and default tie-breaks.
    pub fn leave_join(processors: u32, horizon: Slot) -> SimConfig {
        SimConfig {
            scheme: Scheme::LeaveJoin,
            ..SimConfig::oi(processors, horizon)
        }
    }

    /// Builder-style: replace the scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> SimConfig {
        self.scheme = scheme;
        self
    }

    /// Builder-style: replace the tie-break policy.
    pub fn with_tie_break(mut self, tb: TieBreak) -> SimConfig {
        self.tie_break = tb;
        self
    }

    /// Builder-style: set the admission policy.
    pub fn with_admission(mut self, a: AdmissionPolicy) -> SimConfig {
        self.admission = a;
        self
    }

    /// Builder-style: enable history recording.
    pub fn with_history(mut self) -> SimConfig {
        self.record_history = true;
        self
    }

    /// Builder-style: disable slot batching, forcing the per-slot
    /// oracle path (equivalence tests diff this against the default).
    pub fn per_slot(mut self) -> SimConfig {
        self.tickless = false;
        self
    }

    /// Builder-style: keep the tickless driver but disable busy-span
    /// batching (the bench suite's `tickless` series measures this
    /// against the default to isolate the busy-span multiplier).
    pub fn without_busy_span(mut self) -> SimConfig {
        self.busy_span = false;
        self
    }
}

/// What firing the pending change does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PendKind {
    /// Enact the weight change and release the era-opening subtask.
    Enact,
    /// The weight change is already enacted (rule I, increase); only the
    /// era-opening release remains.
    ReleaseOnly,
}

/// A parked weight change. `at` is always a concrete slot: waits on an
/// `I_SW` completion (`D(I_SW, T_j) + b`) are resolved eagerly at
/// initiation from the closed-form projection — exact because the
/// scheduling weight is era-constant until this very pending fires, and
/// any superseding initiation replaces the pending (stale `enact_at`
/// entries are validated away when their slot arrives).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pending {
    target: Rational,
    /// Fires in step 2 of this slot.
    at: Slot,
    kind: PendKind,
    /// Slot the owning reweighting event was initiated at (probe
    /// reporting only — rule semantics never read it).
    initiated_at: Slot,
}

/// A released subtask the engine still tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SubRec {
    index: u64,
    window: SubtaskWindow,
    /// PD² group deadline (equals the deadline for light tasks).
    group_deadline: Slot,
    era_first: bool,
    scheduled_at: Option<Slot>,
    halted_at: Option<Slot>,
    isw_completion: Option<Slot>,
    missed: bool,
}

/// Per-task runtime state: the *cold row* of the [`TaskSlab`] arena.
///
/// Four per-slot-hot facts — presence (`in_system`), the ran-last-slot
/// flag, the scheduling weight `swt(T, t)`, and the next release slot —
/// live in the slab's dense columns instead of here, so whole-set scans
/// never touch these rows (see `engine/slab.rs`).
#[derive(Clone, Debug)]
struct TaskState {
    id: TaskId,
    /// Actual weight `wt(T, t)` (changes at initiation).
    wt: Rational,
    /// `z`: indices `> era_base` belong to the current era.
    era_base: u64,
    /// Index the next released subtask will get.
    next_index: u64,
    /// The next release opens an era (`Id(T_i) = i`).
    era_open_pending: bool,
    /// Recent subtask records (all of them in history mode).
    subs: VecDeque<SubRec>,
    pending: Option<Pending>,
    /// Time at which an initiated leave takes effect.
    leaving: Option<Slot>,
    /// Window of the most recently *scheduled* subtask (rule L).
    last_scheduled: Option<SubtaskWindow>,
    /// Per-era memo of window lengths, b-bits, and group-deadline
    /// offsets; rebuilt when the scheduling weight changes.
    win_cache: Option<WindowCache>,
    isw: IswTracker,
    ps: PsTracker,
    drift: DriftTrack,
    scheduled_count: u64,
    last_cpu: Option<u32>,
    // History-mode accumulators.
    archived: Vec<SubtaskRecord>,
    scheduled_slots: Vec<Slot>,
    isw_per_slot: Vec<Rational>,
    halted_corrections: Vec<(Slot, Rational)>,
}

impl TaskState {
    fn placeholder(id: TaskId) -> TaskState {
        TaskState {
            id,
            wt: Rational::ZERO,
            era_base: 0,
            next_index: 1,
            era_open_pending: false,
            subs: VecDeque::new(),
            pending: None,
            leaving: None,
            last_scheduled: None,
            win_cache: None,
            isw: IswTracker::new(Rational::ONE, 0),
            ps: PsTracker::new(Rational::ONE, 0),
            drift: DriftTrack::new(),
            scheduled_count: 0,
            last_cpu: None,
            archived: Vec::new(),
            scheduled_slots: Vec::new(),
            isw_per_slot: Vec::new(),
            halted_corrections: Vec::new(),
        }
    }

    /// Most recently released subtask record.
    fn last_released(&self) -> Option<&SubRec> {
        self.subs.back()
    }

    /// Index (into `subs`) of the first unscheduled, unhalted subtask —
    /// the task's schedulable head.
    fn head_pos(&self) -> Option<usize> {
        self.subs
            .iter()
            .position(|s| s.scheduled_at.is_none() && s.halted_at.is_none())
    }

    /// Find the most recent non-halted subtask strictly before `index`.
    fn pred_of(&self, index: u64) -> Option<&SubRec> {
        self.subs
            .iter()
            .rev()
            .find(|s| s.index < index && s.halted_at.is_none())
    }

    fn sub_mut(&mut self, index: u64) -> Option<&mut SubRec> {
        self.subs.iter_mut().find(|s| s.index == index)
    }

    fn to_record(s: &SubRec) -> SubtaskRecord {
        SubtaskRecord {
            index: s.index,
            window: s.window,
            scheduled_at: s.scheduled_at,
            halted_at: s.halted_at,
            isw_completion: s.isw_completion,
            era_first: s.era_first,
        }
    }

    /// Event-driven tracker synchronization: advances the ideal trackers
    /// to boundary `t` in one closed-form jump and folds any completions
    /// discovered along the way into the subtask records. The engine
    /// calls this wherever it reads or mutates ideal state — enactments,
    /// initiations, halts, delays, releases, departures, end-of-run — so
    /// the scheduling weight is constant between syncs and the jump is
    /// bit-identical to the per-slot oracle (`IswTracker::advance_to`).
    /// In history mode step 6 advances the trackers every slot, making
    /// this a no-op.
    fn sync_ideals_to(&mut self, t: Slot) {
        if self.isw.now() < t {
            let (_, completions) = self.isw.advance_to(t);
            for c in completions {
                if let Some(sub) = self.sub_mut(c.index) {
                    sub.isw_completion = Some(c.complete_at);
                }
            }
        }
        if self.ps.now() < t {
            self.ps.advance_to(t);
        }
    }

    /// Drops records that can no longer influence the rules. Keeps every
    /// unscheduled/unhalted subtask, anything whose `I_SW` completion is
    /// still unknown (rule O may need to watch it), and the two most
    /// recent records.
    fn prune(&mut self, record_history: bool) {
        while self.subs.len() > 2 {
            let s = &self.subs[0]; // audit: allow(panic-reach, guarded by the subs.len() > 2 loop condition)
            let settled = s.halted_at.is_some() || s.isw_completion.is_some();
            let done = s.scheduled_at.is_some() || s.halted_at.is_some();
            if settled && done && !s.missed {
                let Some(rec) = self.subs.pop_front() else {
                    break;
                };
                if record_history {
                    self.archived.push(Self::to_record(&rec));
                }
            } else {
                break;
            }
        }
    }
}

/// The PD² simulation engine. Construct with [`Engine::new`], drive with
/// [`Engine::step`] (or run to the horizon with [`Engine::run`]), then
/// collect the [`SimResult`] with [`Engine::finish`]. `Clone` snapshots
/// the full simulation state (used by benchmarks to measure single
/// slots from a prepared state).
///
/// The engine is generic over a [`Probe`], resolved by static dispatch:
/// the default [`NoopProbe`] compiles every hook to nothing, so
/// `Engine::new` callers pay for observability only when they opt in
/// via [`Engine::with_probe`].
#[derive(Clone)]
pub struct Engine<P: Probe = NoopProbe> {
    probe: P,
    config: SimConfig,
    events: Vec<Event>,
    next_event: usize,
    tasks: TaskSlab,
    queue: ReadyQueue,
    selector: RuleSelector,
    admission: AdmissionController,
    counters: Counters,
    misses: Vec<Miss>,
    now: Slot,
    /// Events injected online (e.g., by the real-time executor), merged
    /// into the stream at each step.
    injected: Vec<Event>,
    /// Earliest `at` among `injected` ([`NEVER`] when empty): the
    /// per-slot injection scan only runs on slots that can fire one,
    /// and the tickless driver treats it as an event boundary.
    injected_min: Slot,
    /// The previous slot's chosen set. Feeds the delta ran-flag sweep
    /// (`sweep_ran_flags`); rebuilt from the slab's `ran` bitmap after
    /// busy-span jumps and snapshot restores.
    last_chosen: Vec<TaskId>,
    /// Tasks whose records changed this slot (synced, scheduled, or
    /// halted) — the only candidates for pruning, drained at the end of
    /// each slot. Replaces the oracle's all-task prune sweep.
    touched: Vec<TaskId>,
    /// Min-heap of `(deadline, task, index)` over released, pending
    /// subtasks: miss detection pops due entries instead of scanning
    /// every task's records. Entries are validated against the live
    /// record when popped (halts/schedules/leaves make them stale);
    /// rebuilt after busy-span jumps (windows translate) and restores.
    miss_watch: BinaryHeap<Reverse<(Slot, u32, u64)>>,
    /// Current run boundary (`run_to`); the busy-span verifier must not
    /// step past it. Reset to the horizon outside `run_to`.
    run_limit: Slot,
    /// Dense per-task tie ranks, precomputed once from
    /// `config.tie_break` (a `Ranked` policy's `key` is a linear scan —
    /// too slow for the release hot path).
    tie: TieTable,
    /// Slot-indexed schedule of upcoming subtask releases: tasks whose
    /// `next_release` was set to the key slot. Entries are validated
    /// against the task's current `next_release` when their slot
    /// arrives (a later delay/park/leave makes them stale), so each
    /// slot costs `O(due)` instead of a scan over every task.
    release_at: CalendarRing,
    /// Slot-indexed parked reweighting changes (`Pending::at`);
    /// validated against `TaskState::pending` on firing, since a
    /// superseding initiation or a leave may have replaced the entry.
    enact_at: CalendarRing,
    /// Slot-indexed rule-L departures; validated against
    /// `TaskState::leaving` on firing.
    leave_at: CalendarRing,
    /// Busy-span batching state machine (armed snapshot, mismatch
    /// backoff). Not persisted: a restored engine re-arms from scratch,
    /// which cannot change its trajectory (jumps are verified no-ops
    /// over per-slot stepping).
    busy: busy_span::BusySpanState,
    /// Number of verified busy-span jumps enacted (diagnostic; not a
    /// `Counters` field — the per-slot oracle never increments it, and
    /// counters must stay bit-identical across drivers).
    busy_span_jumps: u64,
}

impl Engine {
    /// Builds an engine for the given workload (no probe — the
    /// zero-cost [`NoopProbe`] is used).
    pub fn new(config: SimConfig, workload: &Workload) -> Engine {
        Engine::with_probe(config, workload, NoopProbe)
    }
}

impl<P: Probe> Engine<P> {
    /// Builds an engine whose hooks report to `probe`.
    pub fn with_probe(config: SimConfig, workload: &Workload, probe: P) -> Engine<P> {
        let n = workload.task_count();
        Engine {
            probe,
            selector: RuleSelector::new(config.scheme.clone(), n),
            admission: AdmissionController::new(config.admission, config.processors, n),
            events: workload.sorted_events(),
            next_event: 0,
            tasks: TaskSlab::new(n),
            queue: ReadyQueue::new(),
            counters: Counters::default(),
            misses: Vec::new(),
            now: 0,
            injected: Vec::new(),
            injected_min: NEVER,
            last_chosen: Vec::new(),
            touched: Vec::new(),
            miss_watch: BinaryHeap::new(),
            run_limit: config.horizon,
            tie: TieTable::new(&config.tie_break, n),
            release_at: CalendarRing::new(0),
            enact_at: CalendarRing::new(0),
            leave_at: CalendarRing::new(0),
            busy: busy_span::BusySpanState::default(),
            busy_span_jumps: 0,
            config,
        }
    }

    /// The engine's probe (live drivers emit executor-side events —
    /// overruns, skips — through this).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Event-driven tracker synchronization with observation: wraps
    /// [`TaskState::sync_ideals_to`] and reports the closed-form jump
    /// (when one happened) to the probe.
    fn sync_task(&mut self, id: TaskId, t: Slot) {
        // A sync can settle completions, changing prunability.
        self.touched.push(id);
        let task = self.tasks.task_mut(id);
        let from = task.isw.now();
        task.sync_ideals_to(t);
        if from < t {
            self.probe.on_tracker_advance(id, from, t);
        }
    }

    /// Number of ready-queue entries, stale ones included (compaction
    /// keeps this bounded; see [`ReadyQueue::compact`]).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The next slot to be simulated.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Injects an event online. Events whose time has already passed
    /// fire at the next step; future-dated events fire at their slot.
    /// This is how live drivers (the real-time executor) feed
    /// reweighting requests into a running engine.
    pub fn inject(&mut self, event: Event) {
        self.injected_min = self.injected_min.min(event.at);
        self.injected.push(event);
    }

    /// Number of task slots the engine can address (ids `0..n`,
    /// present or not).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of tasks currently in the system.
    pub fn present_count(&self) -> usize {
        self.tasks.present_count()
    }

    /// Total utilization currently committed by admission (the
    /// condition-(W) left-hand side); the shard supervisor routes joins
    /// to the least-committed shard by this figure.
    pub fn committed_utilization(&self) -> Rational {
        self.admission.total_committed()
    }

    /// Grows every per-task table to address ids `0..n` — the online
    /// analogue of sizing from `workload.task_count()` at build time.
    /// The shard supervisor uses this to admit globally-numbered tasks
    /// (and migration rejoins under fresh ids) into a running shard.
    ///
    /// Growth is append-only and does not disturb existing tasks; note
    /// that under a `Ranked`/`TaskIdDesc` tie-break appended ids take
    /// ranks after the existing ones (see [`TieTable::ensure_tasks`]),
    /// so suppliers that need those policies should size up front.
    pub fn ensure_task_capacity(&mut self, n: u32) {
        // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
        if (n as usize) <= self.tasks.len() {
            return;
        }
        self.tasks.ensure(n);
        self.selector.ensure_tasks(n);
        self.admission.ensure_tasks(n);
        self.tie.ensure_tasks(&self.config.tie_break, n);
    }

    /// Overhead counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Runs every remaining slot up to the horizon.
    ///
    /// With `config.tickless` (the default) quiet spans — empty ready
    /// queue, no event due — are advanced in closed form; the result,
    /// counters, and probe stream are bit-identical to stepping every
    /// slot (see DESIGN.md, "Tickless invariant"). History runs always
    /// take the per-slot path: they materialize per-slot ideal series.
    pub fn run(&mut self) {
        self.run_to(self.config.horizon);
    }

    /// Runs every remaining slot up to `min(until, horizon)` — the
    /// segmented form of [`Engine::run`]. A run split into segments is
    /// bit-identical to one unsegmented run: every driver below is
    /// equivalent to per-slot stepping regardless of where the
    /// boundaries land, so the shard supervisor can interleave event
    /// routing between segments without perturbing any shard's
    /// trajectory.
    pub fn run_to(&mut self, until: Slot) {
        let until = until.min(self.config.horizon);
        self.run_limit = until;
        if self.config.tickless && !self.config.record_history {
            self.run_tickless(until);
        } else {
            while self.now < until {
                self.step();
            }
        }
        self.run_limit = self.config.horizon;
    }

    /// Event-horizon driver. Each iteration runs one full per-slot
    /// [`Engine::step`], then — while the ready queue is empty and no
    /// enactment/departure/stream/injected event is due — consumes the
    /// quiet span ahead in one of two closed forms: a pure skip to the
    /// next event horizon, or a "quick release slot" for release-only
    /// slots whose due set fits on the `M` processors.
    fn run_tickless(&mut self, until: Slot) {
        while self.now < until {
            self.step();
            self.busy_span_tick();
            while self.now < until && self.queue.is_empty() && self.injected_min > self.now {
                let t = self.now;
                let boundary = self.next_boundary(t).min(until);
                if boundary <= t {
                    break; // a non-release event needs the full pipeline now
                }
                let next_release = self.release_at.next_occupied(t).unwrap_or(NEVER);
                if next_release >= boundary {
                    self.skip_quiet_span(t, boundary);
                    self.busy_span_tick();
                    break;
                }
                if next_release > t {
                    self.skip_quiet_span(t, next_release);
                    // The busy-span verifier needs to observe every
                    // boundary the driver reaches (a probe's verify slot
                    // may land right here); restart the scan in case it
                    // armed or jumped.
                    self.busy_span_tick();
                    continue;
                }
                if !self.quick_release_slot(next_release) {
                    break; // crowded or stale slot: the full pipeline takes it
                }
                self.busy_span_tick();
            }
        }
    }

    /// The earliest upcoming slot at which anything other than a
    /// subtask release can change engine state: a parked enactment, a
    /// rule-L departure, the next workload-stream event, or the
    /// earliest online injection (quiet spans clamp to it; the slot it
    /// names runs the full pipeline, which fires it).
    fn next_boundary(&self, t: Slot) -> Slot {
        let stream = self.events.get(self.next_event).map_or(NEVER, |e| e.at);
        let enact = self.enact_at.next_occupied(t).unwrap_or(NEVER);
        let leave = self.leave_at.next_occupied(t).unwrap_or(NEVER);
        stream.min(enact).min(leave).min(self.injected_min)
    }

    /// Advances over `start..end` in one jump. Legal because the ready
    /// queue is empty (hence no task holds a released, unscheduled,
    /// unhalted subtask — every head has a live queue entry) and no
    /// event of any kind is due in the span: each skipped slot would
    /// have scheduled nothing, preempted nothing, missed nothing, and
    /// counted one hole. The span's remainder is reported through
    /// [`Probe::on_quiet_span`]: span-aware probes aggregate it in
    /// O(1), legacy probes get the default per-slot
    /// `on_slot_start` replay and stay bit-identical, and under
    /// [`NoopProbe`] the jump is O(1).
    fn skip_quiet_span(&mut self, start: Slot, end: Slot) {
        debug_assert!(start < end, "empty quiet span");
        debug_assert!(self.queue.is_empty(), "batching over a non-empty queue");
        if self.config.processors > 0 {
            self.counters.slots_with_holes += u64::try_from(end - start).unwrap_or(0);
        }
        // First slot: last slot's chosen tasks stop running, exactly as
        // the oracle's ran-flag scan would record. Later slots change no
        // flags at all (nothing runs, nothing ran).
        self.probe.on_slot_start(start);
        let last = std::mem::take(&mut self.last_chosen);
        self.sweep_ran_flags(start, &last, &[]);
        if start + 1 < end {
            let holes = u64::try_from(end - (start + 1))
                .unwrap_or(0)
                .saturating_mul(u64::from(self.config.processors));
            self.probe.on_quiet_span(start + 1, end, holes);
        }
        self.now = end;
    }

    /// Runs a release-only slot without the full pipeline: every due
    /// release fires through the shared [`Engine::release_batch`], and —
    /// because the queue held nothing else — PD² selection schedules
    /// exactly the released heads. Returns `false` (leaving all state
    /// untouched) when the due set might not fit on the processors, in
    /// which case the caller falls back to a full [`Engine::step`].
    fn quick_release_slot(&mut self, t: Slot) -> bool {
        let m = self.config.processors as usize; // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
        let due_count = self.release_at.due_count(t);
        if due_count == 0 || due_count > m {
            return false;
        }
        self.probe.on_slot_start(t);
        let due = self.release_at.take(t);
        self.release_batch(t, due);
        let chosen = self.pop_and_schedule(t);
        let last = std::mem::take(&mut self.last_chosen);
        self.sweep_ran_flags(t, &last, &chosen);
        self.promote_successors(&chosen);
        // Only touched (= released, = chosen) tasks changed state;
        // pruning them matches the oracle's all-task prune, which no-ops
        // elsewhere.
        let touched = std::mem::take(&mut self.touched);
        for id in touched {
            self.tasks.task_mut(id).prune(false);
        }
        self.now = t + 1;
        self.last_chosen = chosen;
        true
    }

    /// Delta form of the oracle's ran-flag/preemption scan: only tasks
    /// in last slot's chosen set can hold a set `ran` bit, so updating
    /// `prev ∪ chosen` touches every flag the full scan would change.
    /// Preempted tasks are reported in ascending id order, matching the
    /// oracle's task-order iteration. A member of `prev` whose bit is
    /// already clear left and rejoined this slot (the join resets the
    /// flag); the oracle would neither flip its flag nor count a
    /// preemption, so it is skipped.
    fn sweep_ran_flags(&mut self, t: Slot, prev: &[TaskId], chosen: &[TaskId]) {
        let mut preempted: Vec<TaskId> = Vec::new();
        for &id in prev {
            if chosen.contains(&id) || !self.tasks.ran_last_slot(id) {
                continue;
            }
            self.tasks.set_ran(id, false);
            if self.tasks.task(id).head_pos().is_some() {
                self.counters.preemptions += 1;
                preempted.push(id);
            }
        }
        for &id in chosen {
            self.tasks.set_ran(id, true);
        }
        preempted.sort_unstable_by_key(|id| id.0);
        for id in preempted {
            self.probe.on_preempt(id, t);
        }
    }

    /// Simulates one slot. Returns the tasks scheduled in it (at most
    /// `M`), in no particular order.
    pub fn step(&mut self) -> Vec<TaskId> {
        let t = self.now;
        assert!(t < self.config.horizon, "stepping past the horizon"); // audit: allow(panic-reach, run-invariant assertion, a violation is a scheduler bug and must abort)
        self.probe.on_slot_start(t);

        // Steps 1–3: timed state changes. Joins/leaves and initiations
        // come from the event stream (and online injections); enactments
        // from pending changes.
        self.fire_departures(t);
        self.fire_enactments(t);
        self.fire_events(t);
        // Injected (live) events come after the stream's own events for
        // the slot, so an injection can address a task whose join is
        // scheduled in this very slot.
        self.fire_injected(t);

        // Step 4: releases due at t.
        self.fire_releases(t);

        // Step 5: PD² selection, with the delta ran-flag/preemption
        // sweep over `prev ∪ chosen` (see `sweep_ran_flags` for the
        // equivalence argument against the oracle's all-task scan).
        let chosen = self.pop_and_schedule(t);
        let last = std::mem::take(&mut self.last_chosen);
        self.sweep_ran_flags(t, &last, &chosen);
        self.promote_successors(&chosen);
        self.last_chosen.clone_from(&chosen);

        // Step 6: per-slot ideal-schedule advance — history mode only,
        // where the per-slot I_SW series must be materialized anyway.
        // Event-driven runs instead jump the trackers forward at event
        // boundaries (`TaskState::sync_ideals_to`), cutting ideal
        // bookkeeping from O(slots × tasks) to O(events × tasks).
        if self.config.record_history {
            self.advance_ideals(t);
        }

        // Step 7: deadline misses.
        self.check_misses(t);

        // Bound the ready queue: lazy invalidation must not let stale
        // entries accumulate without limit over long horizons.
        self.maybe_compact(t);

        // Prune: a record's prunability only changes when it is synced,
        // scheduled, or halted — all of which mark the task touched —
        // so draining the touched list reaches every record the
        // oracle's all-task sweep would drop. History mode keeps the
        // all-task sweep: the archive order must match the oracle's
        // task-by-task iteration exactly (history runs are small-n).
        if self.config.record_history {
            self.touched.clear();
            self.tasks.prune_all(true);
        } else {
            let touched = std::mem::take(&mut self.touched);
            for id in touched {
                self.tasks.task_mut(id).prune(false);
            }
        }
        self.now = t + 1;
        chosen
    }

    /// Compacts the ready queue once stale entries can dominate it.
    ///
    /// At most one live entry per task is ever enqueued (a task's head,
    /// pushed at release or promotion), so the task count bounds the
    /// live entries; [`compaction_threshold`] documents why exceeding
    /// it by its tuned margin means stale entries dominate and the
    /// sweep amortizes to constant work per push.
    fn maybe_compact(&mut self, t: Slot) {
        let threshold = compaction_threshold(self.tasks.len());
        if self.queue.len() <= threshold {
            return;
        }
        let tasks = &self.tasks;
        let probe = &mut self.probe;
        self.queue.compact_traced(
            &mut self.counters,
            |e| {
                tasks.in_system(e.task)
                    && tasks.get(e.task).is_some_and(|task| {
                        task.subs.iter().any(|s| {
                            s.index == e.index && s.scheduled_at.is_none() && s.halted_at.is_none()
                        })
                    })
            },
            |e| probe.on_stale_drop(e.task, e.index, t),
        );
    }

    /// Applies injected events due at or before `t`. The retain scan
    /// only runs on slots that can fire something (`injected_min`
    /// gates it), so a long-lived backlog of future-dated injections
    /// costs nothing per slot.
    fn fire_injected(&mut self, t: Slot) {
        if self.injected_min > t {
            return;
        }
        let mut due: Vec<Event> = Vec::new();
        self.injected.retain(|e| {
            if e.at <= t {
                due.push(*e);
                false
            } else {
                true
            }
        });
        self.injected_min = self.injected.iter().map(|e| e.at).min().unwrap_or(NEVER);
        for ev in due {
            match ev.kind {
                EventKind::Join(w) => self.handle_join(ev.task, t, w),
                EventKind::Leave => self.handle_leave(ev.task, t),
                EventKind::Reweight(w) => self.handle_reweight(ev.task, t, w),
                EventKind::Delay(by) => self.handle_delay(ev.task, t, by),
            }
        }
    }

    /// Consumes the engine, producing the run's results.
    pub fn finish(self) -> SimResult {
        self.finish_with_probe().0
    }

    /// Consumes the engine, producing the run's results and handing the
    /// probe back (a recorder probe owns the collected trace).
    pub fn finish_with_probe(mut self) -> (SimResult, P) {
        // End-of-run boundary: bring every still-present task's trackers
        // up to the last simulated slot (no-op in history mode; departed
        // tasks were synced when they left).
        let now = self.now;
        for id in self.tasks.present_ids() {
            self.sync_task(id, now);
        }
        let record_history = self.config.record_history;
        let Engine {
            probe,
            config,
            tasks,
            misses,
            counters,
            now,
            ..
        } = self;
        let tasks = tasks
            .into_cold()
            .into_iter()
            .map(|mut ts| TaskResult {
                id: ts.id,
                scheduled_count: ts.scheduled_count,
                ps_total: ts.ps.total(),
                isw_total: ts.isw.isw_total(),
                icsw_total: ts.isw.icsw_total(),
                drift: ts.drift.clone(),
                history: record_history.then(|| {
                    let mut subtasks = std::mem::take(&mut ts.archived);
                    subtasks.extend(ts.subs.iter().map(TaskState::to_record));
                    TaskHistory {
                        subtasks,
                        scheduled_slots: std::mem::take(&mut ts.scheduled_slots),
                        isw_per_slot: std::mem::take(&mut ts.isw_per_slot),
                        halted_corrections: std::mem::take(&mut ts.halted_corrections),
                    }
                }),
            })
            .collect();
        let result = SimResult {
            processors: config.processors,
            horizon: now,
            tasks,
            misses,
            counters,
        };
        (result, probe)
    }

    // ---- step 1: joins & leaves -------------------------------------

    fn fire_departures(&mut self, t: Slot) {
        let due = self.leave_at.take(t);
        if due.is_empty() {
            return;
        }
        for id in Self::in_task_order(due) {
            if self.tasks.task(id).leaving != Some(t) {
                continue;
            }
            // The ideals stop accruing at departure; close them out.
            self.sync_task(id, t);
            self.tasks.task_mut(id).leaving = None;
            self.tasks.set_in_system(id, false);
            self.admission.release(id);
        }
    }

    /// Deduplicates a slot-index bucket and restores the task-index
    /// iteration order the per-slot scans used, keeping slot processing
    /// deterministic and independent of insertion history.
    fn in_task_order(mut due: Vec<TaskId>) -> Vec<TaskId> {
        due.sort_unstable_by_key(|id| id.0);
        due.dedup();
        due
    }

    // ---- step 2: enactments ------------------------------------------

    fn fire_enactments(&mut self, t: Slot) {
        let due = self.enact_at.take(t);
        if due.is_empty() {
            return;
        }
        for id in Self::in_task_order(due) {
            let fire = matches!(
                self.tasks.task(id).pending,
                Some(Pending { at, .. }) if at == t
            );
            if !fire {
                continue; // superseded, cancelled, or re-parked since
            }
            let Some(pending) = self.tasks.task_mut(id).pending.take() else {
                continue;
            };
            // The enactment changes the scheduling weight: advance the
            // trackers across the closing era first, under its weight.
            self.sync_task(id, t);
            match pending.kind {
                PendKind::Enact => {
                    self.tasks.set_swt(id, pending.target);
                    let task = self.tasks.task_mut(id);
                    task.isw.set_swt(pending.target);
                    task.era_base = task.next_index - 1;
                    self.counters.reweight_enactments += 1;
                    if let Ok(w) = Weight::try_new(pending.target) {
                        self.admission.note_enacted(id, w);
                    }
                }
                PendKind::ReleaseOnly => {
                    // swt already switched at initiation (rule I, increase).
                }
            }
            self.tasks.task_mut(id).era_open_pending = true;
            self.tasks.set_next_release(id, Some(t));
            self.note_release(id, t);
            self.probe.on_reweight_enacted(id, t, pending.initiated_at);
        }
    }

    /// Records `id`'s `next_release` slot in the release index. Stale
    /// entries (the release was moved, suppressed, or already fired)
    /// are filtered by the `next_release == Some(t)` check when their
    /// slot comes up.
    fn note_release(&mut self, id: TaskId, at: Slot) {
        self.release_at.insert(at, id);
    }

    // ---- step 3: event-stream processing -----------------------------

    fn fire_events(&mut self, t: Slot) {
        // audit: allow(panic-reach, guarded by the next_event < len loop condition)
        while self.next_event < self.events.len() && self.events[self.next_event].at == t {
            let ev = self.events[self.next_event]; // audit: allow(panic-reach, guarded by the next_event < len loop condition)
            self.next_event += 1;
            // audit: allow(panic-reach, run-invariant assertion, a violation is a scheduler bug and must abort)
            assert!(
                ev.at >= 0 && ev.at < self.config.horizon,
                "event at {} outside simulated range",
                ev.at
            );
            match ev.kind {
                EventKind::Join(w) => self.handle_join(ev.task, t, w),
                EventKind::Leave => self.handle_leave(ev.task, t),
                EventKind::Reweight(w) => self.handle_reweight(ev.task, t, w),
                EventKind::Delay(by) => self.handle_delay(ev.task, t, by),
            }
        }
    }

    /// Intra-sporadic separation (Eqn (4)'s `θ(T_{j+1}) − θ(T_j)` term):
    /// the next pending release moves `by` slots later, and `I_PS` owes
    /// nothing between the predecessor's deadline and the new release
    /// (the task has no active subtask there — cf. Fig. 1(b)'s inactive
    /// slot 4). Ignored while a reweighting change is pending (no
    /// release is scheduled to delay) or when the task is absent.
    fn handle_delay(&mut self, id: TaskId, t: Slot, by: u32) {
        if !self.tasks.in_system(id) || by == 0 {
            return;
        }
        let Some(r_old) = self.tasks.next_release(id) else {
            return;
        };
        if r_old < t {
            return;
        }
        self.sync_task(id, t);
        let r_new = r_old + i64::from(by);
        self.tasks.set_next_release(id, Some(r_new));
        let task = self.tasks.task_mut(id);
        let inactive_from = task
            .last_released()
            .map_or(r_old, |s| s.window.deadline)
            .max(t);
        task.ps.suspend_between(inactive_from, r_new);
        self.note_release(id, r_new);
    }

    fn handle_join(&mut self, id: TaskId, t: Slot, want: Weight) {
        let Some(granted) = self.admission.request(id, want) else {
            return; // join rejected: no capacity at all
        };
        let record_history = self.config.record_history;
        // audit: allow(panic-reach, run-invariant assertion, a violation is a scheduler bug and must abort)
        assert!(!self.tasks.in_system(id), "{id} joined twice");
        let g: Rational = granted.value();
        // History runs retain per-slot halt corrections; event-driven runs
        // keep the tracker's memory bounded instead.
        let isw = if record_history {
            IswTracker::new(g, t).with_slot_history()
        } else {
            IswTracker::new(g, t)
        };
        let task = self.tasks.task_mut(id);
        *task = TaskState {
            wt: g,
            era_base: task.next_index - 1,
            era_open_pending: true,
            isw,
            ps: PsTracker::new(g, t),
            ..std::mem::replace(task, TaskState::placeholder(id))
        };
        self.tasks.set_in_system(id, true);
        self.tasks.set_swt(id, g);
        self.tasks.set_ran(id, false);
        self.tasks.set_next_release(id, Some(t));
        self.note_release(id, t);
    }

    fn handle_leave(&mut self, id: TaskId, t: Slot) {
        if !self.tasks.in_system(id) {
            return;
        }
        // Totals must be settled through `t` before the task can depart
        // immediately (leave_at == t) or halt its unscheduled subtasks.
        self.sync_task(id, t);
        let (withdraw, leave_at) = {
            let task = self.tasks.task(id);
            let withdraw: Vec<u64> = task
                .subs
                .iter()
                .filter(|s| s.scheduled_at.is_none() && s.halted_at.is_none())
                .map(|s| s.index)
                .collect();
            // Rule L: leave no earlier than d(T_i) + b(T_i) of the
            // last-scheduled subtask.
            let leave_at = task
                .last_scheduled
                .map_or(t, |w| (w.deadline + i64::from(w.b)).max(t));
            (withdraw, leave_at)
        };
        for index in withdraw {
            self.halt_subtask(id, index, t);
        }
        self.tasks.set_next_release(id, None);
        self.tasks.task_mut(id).pending = None;
        if leave_at == t {
            self.tasks.set_in_system(id, false);
            self.admission.release(id);
        } else {
            self.tasks.task_mut(id).leaving = Some(leave_at);
            self.leave_at.insert(leave_at, id);
        }
    }

    /// Halts `T_index` of task `id` at time `t` in both the PD² schedule
    /// (stale queue entry) and `I_SW` (allocations stop; `I_CSW` takes
    /// everything back).
    fn halt_subtask(&mut self, id: TaskId, index: u64, t: Slot) {
        // `halt` takes back exactly the allocations accrued so far, so the
        // tracker must first be caught up to the halt boundary.
        self.sync_task(id, t);
        let task = self.tasks.task_mut(id);
        let rec = task.isw.halt(index, t);
        if self.config.record_history {
            task.halted_corrections.extend(rec.slot_allocs);
        }
        // audit: allow(panic, caller-contract violation; rules only halt known live subtasks); allow(panic-reach, present by the engine's slab and queue liveness invariants)
        let sub = task.sub_mut(index).expect("halting unknown subtask");
        sub.halted_at = Some(t);
        self.counters.halts += 1;
        self.probe.on_halt(id, index, t);
    }

    fn handle_reweight(&mut self, id: TaskId, t: Slot, want: Weight) {
        if !self.tasks.in_system(id) {
            return;
        }
        // The paper's reweighting rules cover *light* tasks only (§2);
        // heavy tasks schedule correctly (group-deadline tie-break) but
        // may not reweight, nor may a task reweight into the heavy
        // class. Such requests are rejected and counted.
        let currently_heavy = self.tasks.swt(id) > Rational::new(1, 2);
        if currently_heavy || want.is_heavy() {
            self.counters.rejected_heavy_reweights += 1;
            return;
        }
        let Some(granted) = self.admission.request(id, want) else {
            return;
        };
        self.counters.reweight_initiations += 1;
        let v: Rational = granted.value();
        let old_swt = self.tasks.swt(id);

        // Catch the trackers up to the initiation boundary first: `I_PS`
        // accrues the old weight up to `t` before `set_wt`, and the rules
        // below project `I_SW` completions from the current slot.
        self.sync_task(id, t);

        // The actual weight (and I_PS) changes at initiation, always.
        {
            let task = self.tasks.task_mut(id);
            task.wt = v;
            task.ps.set_wt(v);
        }

        let current_drift = self.tasks.task(id).drift.at(t);
        let choice = self.selector.choose(id, t, old_swt, v, current_drift);
        // Direct per-event cost: queue operations and halts performed
        // while the rules run. Deferred cost (stale entries stranded by
        // the halts) is attributed later via the stale-pop/drop hooks.
        let ops_before = self.counters.heap_ops();
        let halts_before = self.counters.halts;
        let rule = match choice {
            RuleChoice::FineGrained => self.reweight_oi(id, t, v),
            RuleChoice::LeaveJoin => self.reweight_lj(id, t, v),
        };
        let cost = ReweightCost {
            queue_ops: self.counters.heap_ops().saturating_sub(ops_before),
            halts: self.counters.halts.saturating_sub(halts_before),
        };
        let pending = self.tasks.task(id).pending;
        let enact_at = pending.map_or(t, |p| p.at);
        self.probe
            .on_reweight_initiated(id, t, rule, cost, enact_at);
        if pending.is_none() {
            // The rules fired on the spot: initiation and enactment
            // coincide (the probe sees them ordered).
            self.probe.on_reweight_enacted(id, t, t);
        }
    }

    /// Rules O and I of the paper (PD²-OI). A pre-existing pending change
    /// is superseded: the rules re-run against the current state, which
    /// realizes the "skipped event" semantics of §3.2 and property (C).
    /// Returns the rule that resolved the initiation (probe reporting).
    fn reweight_oi(&mut self, id: TaskId, t: Slot, v: Rational) -> Rule {
        let (last, d_passed) = {
            let task = self.tasks.task(id);
            let last = task.last_released().copied();
            let d_passed = last.is_some_and(|s| s.window.deadline <= t);
            (last, d_passed)
        };

        let Some(tj) = last else {
            // No subtask released yet: enact immediately; the first
            // release (already scheduled) will use the new weight.
            self.tasks.set_swt(id, v);
            let task = self.tasks.task_mut(id);
            task.isw.set_swt(v);
            task.pending = None;
            self.counters.reweight_enactments += 1;
            if let Ok(w) = Weight::try_new(v) {
                self.admission.note_enacted(id, w);
            }
            return Rule::Immediate;
        };

        if d_passed {
            // d(T_j) ≤ t_c: enact at max(t_c, d + b).
            let at = (tj.window.deadline + i64::from(tj.window.b)).max(t);
            self.park_or_enact(id, t, v, at, PendKind::Enact);
            return Rule::O;
        }

        let scheduled = tj.scheduled_at.is_some();
        let already_halted = tj.halted_at.is_some();
        if scheduled {
            // Ideal-changeable (rule I). On a first initiation T_j cannot
            // yet be complete in I_SW, but a *superseding* initiation may
            // find its completion already known — then the wait resolves
            // to a concrete time immediately.
            let increase = v > self.tasks.swt(id);
            if increase {
                // I(i): enact immediately; era-opening release waits for
                // D(I_SW, T_j) + b(T_j).
                self.tasks.set_swt(id, v);
                let task = self.tasks.task_mut(id);
                task.isw.set_swt(v);
                task.era_base = task.next_index - 1;
                self.counters.reweight_enactments += 1;
                if let Ok(w) = Weight::try_new(v) {
                    self.admission.note_enacted(id, w);
                }
            }
            let kind = if increase {
                PendKind::ReleaseOnly
            } else {
                PendKind::Enact
            };
            // D(I_SW, T_j) is known in closed form the moment the wait is
            // installed: `swt` cannot change again before this pending
            // change fires (a superseding initiation replaces it wholesale
            // and re-projects), so the projection equals the slot the
            // per-slot tracker would have discovered.
            let proj = tj
                .isw_completion
                .or_else(|| self.tasks.task(id).isw.projected_completion(tj.index));
            // audit: allow(panic-reach, run-invariant assertion, a violation is a scheduler bug and must abort)
            assert!(
                proj.is_some(),
                "scheduled incomplete subtask must project an I_SW completion"
            );
            let at = proj.map_or(t, |d| (d + i64::from(tj.window.b)).max(t));
            self.park_or_enact(id, t, v, at, kind);
            Rule::I
        } else {
            // Omission-changeable (rule O): halt T_j (unless a superseded
            // event already did) and enact at max(t_c, D(I_SW, T_{j−1}) +
            // b(T_{j−1})).
            if !already_halted {
                self.halt_subtask(id, tj.index, t);
            }
            let pred = self.tasks.task(id).pred_of(tj.index).copied();
            match pred {
                None => self.park_or_enact(id, t, v, t, PendKind::Enact),
                Some(p) => {
                    // Same closed-form projection as rule I, against the
                    // predecessor. A retired predecessor always has its
                    // completion recorded on the SubRec, so the record is
                    // consulted before the tracker.
                    let proj = p
                        .isw_completion
                        .or_else(|| self.tasks.task(id).isw.projected_completion(p.index));
                    // audit: allow(panic-reach, run-invariant assertion, a violation is a scheduler bug and must abort)
                    assert!(
                        proj.is_some(),
                        "predecessor of a released subtask must project an I_SW completion"
                    );
                    let at = proj.map_or(t, |d| (d + i64::from(p.window.b)).max(t));
                    self.park_or_enact(id, t, v, at, PendKind::Enact);
                }
            }
            Rule::O
        }
    }

    /// Leave/join reweighting (PD²-LJ): withdraw unscheduled subtasks,
    /// wait out rule L on the last-scheduled subtask, rejoin with the new
    /// weight. Returns [`Rule::Lj`] (probe reporting).
    fn reweight_lj(&mut self, id: TaskId, t: Slot, v: Rational) -> Rule {
        let withdraw: Vec<u64> = self
            .tasks
            .task(id)
            .subs
            .iter()
            .filter(|s| s.scheduled_at.is_none() && s.halted_at.is_none())
            .map(|s| s.index)
            .collect();
        for index in withdraw {
            self.halt_subtask(id, index, t);
        }
        let at = self
            .tasks
            .task(id)
            .last_scheduled
            .map_or(t, |w| (w.deadline + i64::from(w.b)).max(t));
        self.park_or_enact(id, t, v, at, PendKind::Enact);
        Rule::Lj
    }

    /// Installs a pending change, or fires it on the spot when its time
    /// is the current slot (enactments for slot `t` have already run).
    fn park_or_enact(&mut self, id: TaskId, t: Slot, v: Rational, at: Slot, kind: PendKind) {
        let fire_now = at <= t;
        self.tasks.set_next_release(id, None);
        if fire_now {
            if kind == PendKind::Enact {
                self.tasks.set_swt(id, v);
                let task = self.tasks.task_mut(id);
                task.isw.set_swt(v);
                task.era_base = task.next_index - 1;
                self.counters.reweight_enactments += 1;
                if let Ok(w) = Weight::try_new(v) {
                    self.admission.note_enacted(id, w);
                }
            }
            let task = self.tasks.task_mut(id);
            task.era_open_pending = true;
            task.pending = None;
            self.tasks.set_next_release(id, Some(t));
            self.note_release(id, t);
        } else {
            self.tasks.task_mut(id).pending = Some(Pending {
                target: v,
                at,
                kind,
                initiated_at: t,
            });
            self.enact_at.insert(at, id);
        }
    }

    // ---- step 4: releases ---------------------------------------------

    fn fire_releases(&mut self, t: Slot) {
        let due = self.release_at.take(t);
        if due.is_empty() {
            return;
        }
        self.release_batch(t, due);
    }

    /// Releases every valid entry of a slot's due list. Shared verbatim
    /// between the per-slot pipeline and the tickless quick path, so
    /// window arithmetic, tracker syncs, drift samples, queue pushes,
    /// and probe emissions are one code path.
    fn release_batch(&mut self, t: Slot, due: Vec<TaskId>) {
        // Span-aware probes get the slot's releases as one batch; legacy
        // probes keep the per-release emission order unchanged.
        let mut batch: Vec<ReleaseRec> = Vec::new();
        for id in Self::in_task_order(due) {
            if !self.tasks.in_system(id) || self.tasks.next_release(id) != Some(t) {
                continue; // moved, suppressed, or already fired
            }
            // Per-release synchronization boundary: drift samples read
            // A(·, 0, t) below, and settling completions here also keeps
            // `subs` and the tracker's retained records bounded.
            self.sync_task(id, t);
            let tie_rank = self.tie.rank(id);
            let swt = self.tasks.swt(id);
            let task = self.tasks.task_mut(id);
            let index = task.next_index;
            task.next_index += 1;
            let rank = index - task.era_base;
            // audit: allow(panic, engine invariant: reweight rules keep swt within (0 and 1]); allow(panic-reach, present by the engine's slab and queue liveness invariants)
            let weight = Weight::try_new(swt).expect("invalid scheduling weight");
            // One era memo serves every release until the next
            // enactment changes the scheduling weight.
            let cache = match &mut task.win_cache {
                Some(c) if c.weight().value() == swt => c,
                stale => stale.insert(WindowCache::new(weight)),
            };
            let (window, gd) = cache.window_and_group_deadline(rank, t);
            let era_first = task.era_open_pending;
            task.era_open_pending = false;

            // Drift is sampled exactly at era-opening releases: `u` of
            // Eqn (5) is this slot, and the trackers currently hold
            // A(·, 0, t).
            if era_first {
                let ps_total = task.ps.total();
                let icsw_total = task.isw.icsw_total();
                let drift = ps_total - icsw_total;
                task.drift.record(t, ps_total, icsw_total);
                self.probe.on_drift_sample(id, t, drift);
            }

            let pred_b = if era_first {
                false
            } else {
                // audit: allow(panic-reach, within an era the predecessor record is retained until its successor releases)
                task.pred_of(index)
                    .map(|p| p.window.b)
                    // audit: allow(panic, engine invariant: within an era the predecessor record is retained)
                    .expect("non-era-first release without predecessor")
            };
            task.isw.add_subtask(index, t, era_first, pred_b);
            task.subs.push_back(SubRec {
                index,
                window,
                group_deadline: gd,
                era_first,
                scheduled_at: None,
                halted_at: None,
                isw_completion: None,
                missed: false,
            });

            // Eqn (4): the successor's release, unless a pending change
            // or leave suppresses it.
            let successor =
                (task.pending.is_none() && task.leaving.is_none()).then(|| window.next_release());

            // New schedulable head?
            // audit: allow(panic-reach, head_pos returns an in-range position into subs)
            let new_head = task.head_pos().map(|p| task.subs[p].index) == Some(index);
            self.tasks.set_next_release(id, successor);
            if new_head {
                let entry = QueueEntry {
                    priority: Priority::pack(window.deadline, window.b, gd, tie_rank),
                    task: id,
                    index,
                };
                self.queue.push(entry, &mut self.counters);
            }
            if let Some(r) = successor {
                self.note_release(id, r);
            }
            // Miss detection watches every released subtask by deadline;
            // stale entries (scheduled, halted, departed, translated by a
            // busy-span jump) are validated away when they pop.
            self.miss_watch
                .push(Reverse((window.deadline, id.0, index)));
            if P::SPAN_AWARE {
                batch.push(ReleaseRec {
                    task: id,
                    index,
                    deadline: window.deadline,
                    era_first,
                });
            } else {
                self.probe
                    .on_release(id, index, t, window.deadline, era_first);
            }
        }
        if !batch.is_empty() {
            self.probe.on_release_batch(t, &batch);
        }
    }

    // ---- step 5: PD² selection -----------------------------------------

    /// PD² selection proper: pops up to `M` live subtasks from the ready
    /// queue, marks them scheduled, counts holes, and assigns
    /// processors. Shared verbatim between the per-slot pipeline and the
    /// tickless quick path.
    fn pop_and_schedule(&mut self, t: Slot) -> Vec<TaskId> {
        let m = self.config.processors as usize; // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
        let mut chosen: Vec<TaskId> = Vec::with_capacity(m);
        while chosen.len() < m {
            let tasks = &self.tasks;
            let probe = &mut self.probe;
            let Some(entry) = self.queue.pop_live_traced(
                &mut self.counters,
                |e| {
                    tasks.in_system(e.task)
                        && tasks.get(e.task).is_some_and(|task| {
                            task.subs.iter().any(|s| {
                                s.index == e.index
                                    && s.scheduled_at.is_none()
                                    && s.halted_at.is_none()
                            })
                        })
                },
                |e| probe.on_stale_pop(e.task, e.index, t),
            ) else {
                break;
            };
            // Scheduling settles the head record; the task must reach
            // the end-of-slot prune.
            self.touched.push(entry.task);
            let task = self.tasks.task_mut(entry.task);
            // audit: allow(panic-reach, pop_live just verified the subtask is present and live)
            let sub = task
                .sub_mut(entry.index)
                // audit: allow(panic, pop_live just verified the subtask is present and live)
                .expect("live entry lost its subtask");
            sub.scheduled_at = Some(t);
            let win = sub.window;
            task.last_scheduled = Some(win);
            task.scheduled_count += 1;
            if self.config.record_history {
                task.scheduled_slots.push(t);
            }
            self.counters.scheduled_quanta += 1;
            self.probe.on_schedule(entry.task, entry.index, t);
            chosen.push(entry.task);
        }

        if chosen.len() < m {
            self.counters.slots_with_holes += 1;
        }

        self.assign_processors(&chosen);
        chosen
    }

    /// Pushes the new schedulable head of every just-scheduled task
    /// (eligible from t + 1, but pushing now is safe: selection for
    /// slot t is over).
    fn promote_successors(&mut self, chosen: &[TaskId]) {
        for &id in chosen {
            let tie_rank = self.tie.rank(id);
            let task = self.tasks.task(id);
            if let Some(pos) = task.head_pos() {
                let s = task.subs[pos]; // audit: allow(panic-reach, head_pos returns an in-range position into subs)
                let entry = QueueEntry {
                    priority: Priority::pack(
                        s.window.deadline,
                        s.window.b,
                        s.group_deadline,
                        tie_rank,
                    ),
                    task: id,
                    index: s.index,
                };
                self.queue.push(entry, &mut self.counters);
            }
        }
    }

    /// Greedy sticky assignment: tasks keep their previous processor when
    /// free; otherwise they migrate (and are counted).
    fn assign_processors(&mut self, chosen: &[TaskId]) {
        let m = self.config.processors as usize; // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
        let mut cpu_taken = vec![false; m];
        let mut unplaced: Vec<TaskId> = Vec::new();
        for &id in chosen {
            let last = self.tasks.task(id).last_cpu;
            match last {
                // audit: allow(lossy-cast, u32→usize is lossless on the supported targets); allow(panic-reach, cpu ids are < processors, the length of cpu_taken)
                Some(c) if !cpu_taken[c as usize] => cpu_taken[c as usize] = true,
                _ => unplaced.push(id),
            }
        }
        let mut free: Vec<u32> = (0..self.config.processors)
            // audit: allow(lossy-cast, u32→usize is lossless on the supported targets); allow(panic-reach, cpu ids are < processors, the length of cpu_taken)
            .filter(|c| !cpu_taken[*c as usize])
            .collect();
        free.reverse(); // pop from the low end first
        for id in unplaced {
            // audit: allow(panic, PD² selection never chooses more than `processors` tasks); allow(panic-reach, present by the engine's slab and queue liveness invariants)
            let cpu = free.pop().expect("more chosen tasks than processors");
            cpu_taken[cpu as usize] = true; // audit: allow(lossy-cast, u32→usize is lossless on the supported targets); allow(panic-reach, cpu ids are < processors, the length of cpu_taken)
            let task = self.tasks.task_mut(id);
            if task.last_cpu.is_some() {
                self.counters.migrations += 1;
            }
            task.last_cpu = Some(cpu);
        }
    }

    // ---- step 6 (history mode): per-slot ideal advance ------------------

    /// Per-slot oracle path, active only under `record_history`: the
    /// `isw_per_slot` series needs every slot's allocation anyway, so the
    /// closed-form jumps buy nothing there. Event-driven runs skip this
    /// entirely and rely on `TaskState::sync_ideals_to`.
    fn advance_ideals(&mut self, t: Slot) {
        for id in self.tasks.present_ids() {
            let task = self.tasks.task_mut(id);
            let (slot_alloc, completions) = task.isw.advance(t);
            task.ps.advance(t);
            let idx = slot_index(t);
            if task.isw_per_slot.len() <= idx {
                task.isw_per_slot.resize(idx + 1, Rational::ZERO);
            }
            task.isw_per_slot[idx] = slot_alloc; // audit: allow(panic-reach, idx is produced by the tracker for the recorded horizon)
            for c in completions {
                if let Some(sub) = task.sub_mut(c.index) {
                    sub.isw_completion = Some(c.complete_at);
                }
            }
        }
    }

    // ---- step 7: miss detection -----------------------------------------

    /// Pops the miss-watch heap instead of scanning every task: each
    /// release pushed `(deadline, task, index)`, so the due entries at
    /// a full step are exactly the candidates the oracle's scan would
    /// visit, in the same `(task, index)` order within the deadline.
    /// Entries whose record is no longer a pending miss — scheduled,
    /// halted, departed, or re-windowed by a busy-span jump (which
    /// rebuilds the watch) — validate away here.
    ///
    /// Entries can surface with `deadline ≤ t` only when their slot was
    /// consumed by a closed-form driver, and those slots provably hold
    /// no miss: a quiet span has an empty ready queue (no pending
    /// released subtask exists at all), and a quick release slot
    /// schedules everything it releases. The debug assertion pins that
    /// argument.
    fn check_misses(&mut self, t: Slot) {
        while let Some(&Reverse((deadline, raw_task, index))) = self.miss_watch.peek() {
            if deadline > t + 1 {
                break;
            }
            self.miss_watch.pop();
            let id = TaskId(raw_task);
            let live_pending = self.tasks.in_system(id)
                && self.tasks.get(id).is_some_and(|task| {
                    task.subs.iter().any(|s| {
                        s.index == index
                            && s.scheduled_at.is_none()
                            && s.halted_at.is_none()
                            && !s.missed
                            && s.window.deadline == deadline
                    })
                });
            if deadline < t + 1 {
                debug_assert!(
                    !live_pending,
                    "miss slipped through a batched slot: {id} index {index} deadline {deadline}"
                );
                continue;
            }
            if !live_pending {
                continue;
            }
            if let Some(sub) = self.tasks.task_mut(id).sub_mut(index) {
                sub.missed = true;
            }
            self.probe.on_miss(id, index, t, deadline);
            self.misses.push(Miss {
                task: id,
                index,
                deadline,
            });
        }
    }

    /// Rebuilds the miss-watch heap from the live records — required
    /// after any transformation that moves windows (a busy-span jump
    /// translates every pending deadline by the jump length) or
    /// replaces the record set wholesale (snapshot restore).
    fn rebuild_miss_watch(&mut self) {
        self.miss_watch.clear();
        for id in self.tasks.present_ids() {
            for s in &self.tasks.task(id).subs {
                if s.scheduled_at.is_none() && s.halted_at.is_none() && !s.missed {
                    self.miss_watch
                        .push(Reverse((s.window.deadline, id.0, s.index)));
                }
            }
        }
    }
}

// The shard supervisor moves engines into scoped worker threads; this
// must keep compiling if any future field change makes `Engine` !Send.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Engine>();
};

/// Runs a full simulation: build, run to horizon, collect.
///
/// Literally [`simulate_with`] instantiated at [`NoopProbe`] — one code
/// path, so the `obs_overhead` bench's probe-free baseline and noop
/// series exercise the same machine code.
pub fn simulate(config: SimConfig, workload: &Workload) -> SimResult {
    simulate_with(config, workload, NoopProbe).0
}

/// Runs a full simulation under observation, returning the results and
/// the probe (which owns whatever it collected).
pub fn simulate_with<P: Probe>(config: SimConfig, workload: &Workload, probe: P) -> (SimResult, P) {
    let mut engine = Engine::with_probe(config, workload, probe);
    engine.run();
    engine.finish_with_probe()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    fn oi(m: u32, horizon: Slot) -> SimConfig {
        SimConfig::oi(m, horizon).with_history()
    }

    /// A lone weight-1/2 task on one CPU runs in every other slot and
    /// ends with zero lag at window boundaries.
    #[test]
    fn single_task_periodic_schedule() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 2);
        let r = simulate(oi(1, 20), &w);
        assert!(r.is_miss_free());
        assert_eq!(r.task(TaskId(0)).scheduled_count, 10);
        let hist = r.task(TaskId(0)).history.as_ref().unwrap();
        // Windows [0,2),[2,4),...: work-conserving PD² runs at releases.
        assert_eq!(hist.scheduled_slots[..5], [0, 2, 4, 6, 8]);
    }

    /// Two subtasks of one task never share a slot even when both are
    /// eligible (the b-bit overlap case).
    #[test]
    fn no_task_parallelism_within_a_slot() {
        let mut w = Workload::new();
        w.join(0, 0, 2, 5); // windows [0,3), [2,5): overlap at slot 2
        let r = simulate(oi(2, 30), &w); // two CPUs available
        let hist = r.task(TaskId(0)).history.as_ref().unwrap();
        let mut slots = hist.scheduled_slots.clone();
        let before = slots.len();
        slots.dedup();
        assert_eq!(slots.len(), before, "one quantum per slot per task");
    }

    /// A join rejected by policing leaves the task out of the system.
    #[test]
    fn rejected_join_is_ignored() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 1); // full processor
        w.join(1, 1, 1, 2); // no capacity left
        let r = simulate(SimConfig::oi(1, 10), &w);
        assert_eq!(r.task(TaskId(1)).scheduled_count, 0);
        assert!(r.task(TaskId(1)).ps_total.is_zero());
        assert!(r.is_miss_free());
    }

    /// Reweight events for tasks not in the system are ignored.
    #[test]
    fn reweight_before_join_is_ignored() {
        let mut w = Workload::new();
        w.reweight(0, 1, 1, 2);
        w.join(0, 5, 1, 4);
        let r = simulate(oi(1, 20), &w);
        assert!(r.is_miss_free());
        assert_eq!(r.counters.reweight_initiations, 0);
        assert_eq!(r.task(TaskId(0)).ps_total, rat(15, 4));
    }

    /// A reweight to the task's current weight still follows the rules
    /// (it is a legal AIS event) and harms nothing.
    #[test]
    fn reweight_to_same_weight_is_safe() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 4);
        w.reweight(0, 3, 1, 4);
        let r = simulate(oi(1, 40), &w);
        assert!(r.is_miss_free());
        assert_eq!(r.task(TaskId(0)).scheduled_count, 10);
        assert!(r.task(TaskId(0)).drift.max_abs_delta() <= rat(1, 2));
    }

    /// Leaving frees capacity that a later join can claim.
    #[test]
    fn leave_then_join_recycles_capacity() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 2);
        w.join(1, 0, 1, 2);
        w.leave(0, 6);
        w.join(2, 10, 1, 2);
        let r = simulate(SimConfig::oi(1, 30), &w);
        assert!(r.is_miss_free());
        assert!(r.task(TaskId(2)).scheduled_count >= 9);
    }

    /// The engine's step/finish API agrees with `simulate`.
    #[test]
    fn stepwise_equals_batch() {
        let mut w = Workload::new();
        w.join(0, 0, 3, 20);
        w.join(1, 0, 2, 5);
        w.reweight(0, 7, 1, 2);
        let batch = simulate(oi(2, 50), &w);
        let mut e = Engine::new(oi(2, 50), &w);
        while e.now() < 50 {
            e.step();
        }
        let stepped = e.finish();
        assert_eq!(batch.misses, stepped.misses);
        assert_eq!(batch.counters, stepped.counters);
        for (a, b) in batch.tasks.iter().zip(stepped.tasks.iter()) {
            assert_eq!(a.scheduled_count, b.scheduled_count);
            assert_eq!(a.icsw_total, b.icsw_total);
        }
    }

    /// The tickless driver is bit-identical to the per-slot oracle on a
    /// mixed workload with long quiet spans, reweights, an IS delay
    /// past the calendar window (overflow path), and a rule-L leave.
    #[test]
    fn tickless_matches_per_slot_oracle() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 50);
        w.join(1, 0, 1, 2);
        w.join(2, 3, 1, 9);
        w.reweight(0, 20, 1, 40);
        w.delay(2, 30, 600);
        w.reweight(1, 45, 1, 3);
        w.leave(1, 300);
        let cfg = SimConfig::oi(2, 1_500);
        let oracle = simulate(cfg.clone().per_slot(), &w);
        let fast = simulate(cfg, &w);
        assert_eq!(oracle.counters, fast.counters);
        assert_eq!(oracle.misses, fast.misses);
        assert_eq!(oracle.horizon, fast.horizon);
        for (a, b) in oracle.tasks.iter().zip(fast.tasks.iter()) {
            assert_eq!(a.scheduled_count, b.scheduled_count);
            assert_eq!(a.ps_total, b.ps_total);
            assert_eq!(a.isw_total, b.isw_total);
            assert_eq!(a.icsw_total, b.icsw_total);
            assert_eq!(a.drift.samples(), b.drift.samples());
        }
    }

    /// The busy-span batcher actually fires on a fully saturated system
    /// (total weight = M, no quiet slot anywhere) and the run is
    /// bit-identical to both the plain tickless driver and the per-slot
    /// oracle.
    #[test]
    fn busy_span_jumps_and_matches_oracle_when_saturated() {
        let mut w = Workload::new();
        for t in 0..8 {
            w.join(t, 0, 1, 2); // 8 × 1/2 on 4 CPUs: zero spare capacity
        }
        let cfg = SimConfig::oi(4, 2_000);
        let mut engine = Engine::new(cfg.clone(), &w);
        engine.run();
        assert!(
            engine.busy_span_jumps() > 0,
            "a saturated steady run must batch at least one busy span"
        );
        let fast = engine.finish();
        let tickless = simulate(cfg.clone().without_busy_span(), &w);
        let oracle = simulate(cfg.per_slot(), &w);
        for r in [&tickless, &oracle] {
            assert_eq!(r.counters, fast.counters);
            assert_eq!(r.misses, fast.misses);
            for (a, b) in r.tasks.iter().zip(fast.tasks.iter()) {
                assert_eq!(a.scheduled_count, b.scheduled_count);
                assert_eq!(a.ps_total, b.ps_total);
                assert_eq!(a.isw_total, b.isw_total);
                assert_eq!(a.icsw_total, b.icsw_total);
                assert_eq!(a.drift.samples(), b.drift.samples());
            }
        }
    }

    /// Busy-span batching composes with quiet-span skipping: a
    /// half-loaded uniform system leaves the queue non-empty only on
    /// some slots, and events mid-run force re-verification.
    #[test]
    fn busy_span_survives_mid_run_events() {
        let mut w = Workload::new();
        for t in 0..8 {
            w.join(t, 0, 1, 4); // 8 × 1/4 on 4 CPUs: releases crowd M
        }
        w.reweight(0, 903, 1, 3);
        w.leave(5, 1_207);
        let cfg = SimConfig::oi(4, 2_400);
        let mut engine = Engine::new(cfg.clone(), &w);
        engine.run();
        assert!(engine.busy_span_jumps() > 0);
        let fast = engine.finish();
        let oracle = simulate(cfg.per_slot(), &w);
        assert_eq!(oracle.counters, fast.counters);
        assert_eq!(oracle.misses, fast.misses);
        for (a, b) in oracle.tasks.iter().zip(fast.tasks.iter()) {
            assert_eq!(a.scheduled_count, b.scheduled_count);
            assert_eq!(a.ps_total, b.ps_total);
            assert_eq!(a.isw_total, b.isw_total);
            assert_eq!(a.icsw_total, b.icsw_total);
            assert_eq!(a.drift.samples(), b.drift.samples());
        }
    }

    /// Holes are counted: an under-utilized system idles processors.
    #[test]
    fn hole_accounting() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 4);
        let r = simulate(SimConfig::oi(2, 16), &w);
        // One 1/4 task on two CPUs: every slot has at least one hole.
        assert_eq!(r.counters.slots_with_holes, 16);
        assert_eq!(r.counters.scheduled_quanta, 4);
    }

    /// Migration accounting: a task bouncing between processors is
    /// detected, while a sticky assignment stays at zero.
    #[test]
    fn migration_accounting_is_sticky() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 2);
        w.join(1, 0, 1, 2);
        let r = simulate(SimConfig::oi(2, 40), &w);
        // Two tasks, two CPUs: each keeps its processor.
        assert_eq!(r.counters.migrations, 0);
    }

    /// Preemption accounting: a task with pending work that loses its
    /// processor is counted.
    #[test]
    fn preemption_accounting() {
        // Three half-weight tasks on one CPU would overload; use three
        // 1/3 tasks instead: each runs 1-in-3 slots, and whichever ran
        // last slot but not now while holding released work counts.
        let mut w = Workload::new();
        for i in 0..3 {
            w.join(i, 0, 1, 3);
        }
        let r = simulate(SimConfig::oi(1, 30), &w);
        assert!(r.is_miss_free());
        assert!(r.counters.preemptions > 0);
    }

    /// Enactment counters line up with initiations: every granted event
    /// is eventually enacted exactly once (superseded ones excepted).
    #[test]
    fn enactment_accounting() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 4);
        w.reweight(0, 5, 1, 3);
        w.reweight(0, 25, 1, 5);
        let r = simulate(oi(1, 60), &w);
        assert_eq!(r.counters.reweight_initiations, 2);
        assert_eq!(r.counters.reweight_enactments, 2);
    }

    /// A superseded pending change is skipped: two initiations in quick
    /// succession enact only the newer target.
    #[test]
    fn superseded_event_is_skipped() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 10);
        w.reweight(0, 3, 1, 8); // decrease path: enacts at D + b
        w.reweight(0, 4, 1, 2); // supersedes before enactment
        let r = simulate(oi(1, 60), &w);
        assert!(r.is_miss_free());
        // The final scheduling weight is the newest target: from the
        // last era on, windows are length-2 (weight 1/2).
        let hist = r.task(TaskId(0)).history.as_ref().unwrap();
        let last_era = hist.subtasks.iter().rev().find(|s| s.era_first).unwrap();
        assert_eq!(last_era.window.len(), 2);
    }

    /// Long horizon under sustained rule-O halting: stale entries with
    /// ~100-slot deadlines pile up beneath a fully-saturated top of the
    /// heap (half-weight tasks keep all processors busy, so stale
    /// entries only drain when their deadline approaches). Lazy
    /// invalidation alone would hold hundreds of them; the compaction
    /// sweep keeps the heap within its `compaction_threshold` bound at
    /// every slot boundary.
    #[test]
    fn long_horizon_queue_stays_bounded() {
        let churn: u32 = 32;
        let horizon: i64 = 6_000;
        let mut w = Workload::new();
        // 32 tiny-weight tasks reweighting every ~3 slots; each rule-O
        // initiation halts the unscheduled head, stranding a stale
        // far-deadline entry.
        for i in 0..churn {
            w.join(i, 0, 1, 100);
            let mut t = 1 + i64::from(i) % 3;
            while t + 1 < horizon {
                w.reweight(i, t, 1, 120);
                w.reweight(i, t + 1, 1, 100);
                t += 3;
            }
        }
        // Fill the remaining capacity with half-weight tasks (the last
        // join is clamped by policing) so the utilization is exactly M
        // and the heap's top is always near-term work.
        for i in churn..churn + 8 {
            w.join(i, 0, 1, 2);
        }
        let tasks = churn as usize + 8;
        let mut e = Engine::new(SimConfig::oi(4, horizon), &w);
        let bound = compaction_threshold(tasks);
        let mut peak = 0;
        while e.now() < horizon {
            e.step();
            peak = peak.max(e.queue_len());
            assert!(
                e.queue_len() <= bound,
                "queue grew to {} at slot {} (bound {bound})",
                e.queue_len(),
                e.now()
            );
        }
        let r = e.finish();
        assert!(r.is_miss_free());
        assert!(
            r.counters.compactions > 0,
            "the workload never triggered a compaction (peak len {peak}); it is not a stress test"
        );
        assert!(r.counters.compacted_stale > 0);
    }

    /// Probes observe a stream consistent with the aggregate counters,
    /// and the recorder resolves every initiation into a span that is
    /// either enacted or superseded.
    #[test]
    fn probes_observe_reweighting_consistently() {
        use pfair_obs::{Fanout, MetricsProbe, TraceRecorder};
        let mut w = Workload::new();
        // One CPU saturated by two half-weight tasks; the tiny task's
        // far-deadline subtask sits unscheduled, so reweighting it is
        // omission-changeable (rule O). The half-weight task's head is
        // always scheduled promptly, so reweighting it is rule I.
        w.join(0, 0, 1, 50);
        w.join(1, 0, 1, 2);
        w.join(2, 0, 1, 2); // clamped by policing to the leftover capacity
        w.reweight(0, 5, 1, 40); // unscheduled head: rule O
        w.reweight(1, 9, 1, 3); // scheduled head: rule I (parked decrease)
        w.reweight(1, 9, 2, 5); // same-slot supersede of the parked change
        let (r, Fanout(rec, metrics)) = simulate_with(
            SimConfig::oi(1, 60),
            &w,
            Fanout(TraceRecorder::new(), MetricsProbe::new()),
        );
        assert!(r.is_miss_free());
        let reg = metrics.registry();
        assert_eq!(reg.counter("slots"), 60);
        assert_eq!(
            reg.counter("reweight.initiated"),
            r.counters.reweight_initiations
        );
        assert_eq!(reg.counter("halts"), r.counters.halts);
        assert_eq!(reg.counter("schedules"), r.counters.scheduled_quanta);
        assert_eq!(reg.counter("preemptions"), r.counters.preemptions);
        assert_eq!(reg.counter("queue.stale_pops"), r.counters.stale_pops);
        // Event-driven mode: syncs jump the trackers in closed form.
        assert!(reg.counter("tracker.advances") > 0);

        let spans = rec.spans();
        assert_eq!(
            u64::try_from(spans.len()).unwrap(),
            r.counters.reweight_initiations
        );
        assert!(spans.iter().all(|s| s.enacted_at.is_some() || s.superseded));
        assert!(spans.iter().any(|s| s.rule == pfair_obs::Rule::I));
        assert!(spans.iter().any(|s| s.rule == pfair_obs::Rule::O));
        // The superseded decrease never enacts; its replacement does.
        assert_eq!(spans.iter().filter(|s| s.superseded).count(), 1);
        // The trace export stays parseable.
        let text = rec.chrome_trace().to_string_pretty();
        assert!(pfair_json::Json::parse(&text).is_ok());
    }

    /// The NoopProbe run and a probed run agree on results: probes
    /// observe, they never steer.
    #[test]
    fn probed_run_matches_unprobed_run() {
        let mut w = Workload::new();
        for i in 0..6 {
            w.join(i, 0, 1, 3);
        }
        w.reweight(2, 9, 1, 6);
        w.leave(3, 15);
        w.reweight(4, 21, 2, 5);
        let plain = simulate(SimConfig::oi(2, 80), &w);
        let (probed, _rec) =
            simulate_with(SimConfig::oi(2, 80), &w, pfair_obs::TraceRecorder::new());
        assert_eq!(plain.counters, probed.counters);
        assert_eq!(plain.misses, probed.misses);
        for (a, b) in plain.tasks.iter().zip(probed.tasks.iter()) {
            assert_eq!(a.scheduled_count, b.scheduled_count);
            assert_eq!(a.isw_total, b.isw_total);
            assert_eq!(a.ps_total, b.ps_total);
        }
    }

    #[test]
    #[should_panic(expected = "stepping past the horizon")]
    fn stepping_past_horizon_panics() {
        let w = Workload::new();
        let mut e = Engine::new(SimConfig::oi(1, 1), &w);
        e.step();
        e.step();
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn double_join_panics() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 4);
        w.join(0, 1, 1, 4);
        let _ = simulate(SimConfig::oi(1, 10), &w);
    }
}

/// Regression tests for busy-span batching against sticky-processor
/// rotation: saturated plans whose steady schedule is base-periodic in
/// every scheduling-visible field while the processor assignment
/// vector cycles with a longer period (q = 6 base periods in the first
/// case). The batcher must discover the cycle by extending its armed
/// probe — a restart-per-candidate ladder runs out of horizon — and
/// the jumps must stay bit-identical to the per-slot oracle.
#[cfg(test)]
mod busy_span_rotation {
    use super::*;
    use crate::event::Workload;
    use pfair_json::ToJson;

    fn assert_jumps_and_oracle_match(w: &Workload, cfg: SimConfig) {
        let mut e = Engine::new(cfg.clone(), w);
        e.run();
        assert!(
            e.busy_span_jumps() > 0,
            "busy-span batching never engaged despite the saturated periodic tail"
        );
        let batched = e.finish();
        let oracle = simulate(cfg.per_slot(), w);
        assert_eq!(
            batched.to_json().to_string_pretty(),
            oracle.to_json().to_string_pretty(),
            "busy-span run diverged from the per-slot oracle"
        );
    }

    /// Ten tasks on four processors; the assignment orbit settles into
    /// a six-period cycle, so only a 72-slot multiple of the 12-slot
    /// base period verifies.
    #[test]
    fn rotation_cycle_six_periods() {
        let mut w = Workload::new();
        w.join(0, 12, 6, 12);
        w.join(1, 2, 2, 12);
        w.reweight(1, 41, 4, 12);
        w.join(2, 4, 4, 12);
        w.reweight(2, 113, 6, 12);
        w.join(3, 13, 2, 12);
        w.reweight(3, 72, 4, 12);
        w.join(4, 0, 1, 12);
        w.reweight(4, 86, 6, 12);
        w.delay(4, 18, 11);
        w.join(5, 13, 6, 12);
        w.join(6, 0, 1, 2);
        w.join(7, 0, 1, 2);
        w.join(8, 0, 1, 4);
        w.join(9, 0, 1, 12);
        assert_jumps_and_oracle_match(&w, SimConfig::oi(4, 400));
    }

    /// Eight tasks on three processors with late down/up reweights:
    /// batching must re-engage on the tail after each enactment
    /// boundary despite the rotated placements it inherits.
    #[test]
    fn rotation_after_reweight_boundaries() {
        let mut w = Workload::new();
        w.join(0, 5, 3, 12);
        w.reweight(0, 61, 3, 12);
        w.join(1, 16, 5, 12);
        w.reweight(1, 61, 1, 12);
        w.reweight(1, 104, 2, 6);
        for t in 2..6 {
            w.join(t, 0, 1, 2);
        }
        w.join(6, 0, 1, 4);
        w.join(7, 0, 1, 12);
        assert_jumps_and_oracle_match(&w, SimConfig::oi(3, 400));
    }
}
