//! Global EDF baseline with task reweighting.
//!
//! The companion paper \[7\] (Block, Anderson & Devi, ECRTS'06) studies
//! reweighting under *global EDF*, concluding that fine-grained
//! reweighting is possible there **only if deadline misses are
//! permissible**. This module provides an executable version of that
//! trade-off as a baseline for the Pfair schemes: a quantum-based global
//! EDF scheduler over sporadic jobs, with two reweighting modes —
//!
//! * [`EdfReweightMode::AtBoundary`] (coarse): the new weight takes
//!   effect at the task's next job boundary. Deadlines are preserved,
//!   but the enactment delay shows up as drift against `I_PS`, exactly
//!   like PD²-LJ's leaving delay.
//! * [`EdfReweightMode::Immediate`] (fine): the current job's remaining
//!   budget and deadline are re-derived from the new weight on the spot.
//!   Drift stays small, but the schedule may now be over-committed in
//!   the short term and *deadline misses can occur* — the trade-off the
//!   companion paper proves inherent.
//!
//! Substitution note (see DESIGN.md): the supplied paper text defines
//! the Pfair rules precisely but only cites \[7\] for the EDF rules; this
//! implementation reconstructs the natural versions of both modes rather
//! than the companion paper's exact pseudo-code.

use crate::event::{Event, EventKind, Workload};
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::{slot_from_i128, Slot};

/// How a weight change is applied to the running job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdfReweightMode {
    /// Enact at the next job boundary (coarse-grained; no new misses).
    AtBoundary,
    /// Re-derive the current job's budget/deadline now (fine-grained;
    /// misses permissible).
    Immediate,
}

/// A deadline miss (with tardiness) under the EDF baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdfMiss {
    /// The task that missed.
    pub task: TaskId,
    /// The job's absolute deadline.
    pub deadline: Slot,
    /// Completion time minus deadline (≥ 1).
    pub tardiness: Slot,
}

#[derive(Clone, Debug)]
struct EdfTask {
    active: bool,
    /// Enacted weight (drives job generation).
    weight: Rational,
    /// Requested weight not yet enacted (AtBoundary mode).
    pending: Option<Rational>,
    /// Current job: remaining whole quanta and absolute deadline.
    remaining: i64,
    deadline: Slot,
    /// Release time of the next job.
    next_release: Slot,
    /// Whether the current job already missed (report once).
    miss_reported: bool,
    /// `I_PS` accounting (actual weight, changes at initiation).
    ps_wt: Rational,
    ps_total: Rational,
    scheduled: u64,
}

/// Result of an EDF baseline run.
#[derive(Clone, Debug)]
pub struct EdfRun {
    /// Misses with tardiness, in completion order.
    pub misses: Vec<EdfMiss>,
    /// Per-task quanta scheduled.
    pub scheduled: Vec<u64>,
    /// Per-task `A(I_PS, T, 0, horizon)`.
    pub ps_totals: Vec<Rational>,
}

impl EdfRun {
    /// Scheduled work as a fraction of `I_PS`, per task — the drift
    /// analogue used to compare against the Pfair schemes.
    #[allow(clippy::disallowed_types)]
    // audit: allow(float, report-only accuracy metric; never feeds scheduling)
    pub fn pct_of_ideal(&self) -> Vec<f64> {
        self.scheduled
            .iter()
            .zip(&self.ps_totals)
            .map(|(s, ps)| {
                if ps.is_positive() {
                    // audit: allow(float, report-only accuracy metric; never feeds scheduling)
                    100.0 * *s as f64 / ps.to_f64() // audit: allow(lossy-cast, u64→f64 for reporting only)
                } else {
                    // audit: allow(float, report-only accuracy metric; never feeds scheduling)
                    100.0
                }
            })
            .collect()
    }
}

/// Derives a job shape `(budget, relative deadline)` from a weight:
/// unit-cost sporadic jobs with period/deadline `round(1/w)`, so job
/// granularity matches the Pfair schedulers' quantum granularity
/// regardless of the weight's reduced-fraction representation.
fn job_shape(weight: Rational) -> (i64, i64) {
    let num = weight.numer();
    let den = weight.denom();
    let p = slot_from_i128(((2 * den + num) / (2 * num)).max(1)); // round(1/w)
    (1, p)
}

/// Runs quantum-based global EDF over the workload.
pub fn run_global_edf(
    processors: u32,
    horizon: Slot,
    workload: &Workload,
    mode: EdfReweightMode,
) -> EdfRun {
    // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
    let n = workload.task_count() as usize;
    let mut tasks: Vec<EdfTask> = (0..n)
        .map(|_| EdfTask {
            active: false,
            weight: Rational::ONE,
            pending: None,
            remaining: 0,
            deadline: 0,
            next_release: 0,
            miss_reported: false,
            ps_wt: Rational::ONE,
            ps_total: Rational::ZERO,
            scheduled: 0,
        })
        .collect();
    let events: Vec<Event> = workload.sorted_events();
    let mut next_event = 0usize;
    let mut misses = Vec::new();

    for t in 0..horizon {
        while next_event < events.len() && events[next_event].at == t {
            let ev = events[next_event];
            next_event += 1;
            let task = &mut tasks[ev.task.idx()];
            match ev.kind {
                EventKind::Join(w) => {
                    task.active = true;
                    task.weight = w.value();
                    task.ps_wt = w.value();
                    task.pending = None;
                    task.remaining = 0;
                    task.next_release = t;
                    task.ps_total = Rational::ZERO;
                    task.scheduled = 0;
                }
                EventKind::Leave => task.active = false,
                // IS separations: postpone the next job release; the
                // ideal keeps charging (coarse baseline semantics).
                EventKind::Delay(by) => {
                    task.next_release += i64::from(by);
                }
                EventKind::Reweight(w) => {
                    task.ps_wt = w.value();
                    match mode {
                        EdfReweightMode::AtBoundary => task.pending = Some(w.value()),
                        EdfReweightMode::Immediate => {
                            // Adopt the new weight now: the next job may
                            // release as soon as the in-flight one
                            // completes (back-to-back through the
                            // transition), and the in-flight job's
                            // deadline tightens if the new period is
                            // shorter. Tightened deadlines are exactly
                            // where the companion paper's "fine-grained
                            // only if misses are permissible" bites.
                            task.weight = w.value();
                            task.pending = None;
                            task.next_release = t;
                            if task.remaining > 0 {
                                let (_, p_new) = job_shape(w.value());
                                task.deadline = task.deadline.min(t + p_new);
                                task.miss_reported = false;
                            }
                        }
                    }
                }
            }
        }

        // Job releases.
        for task in tasks.iter_mut().filter(|x| x.active) {
            if task.remaining == 0 && task.next_release <= t {
                if let Some(w) = task.pending.take() {
                    task.weight = w;
                }
                let (e, p) = job_shape(task.weight);
                task.remaining = e;
                task.deadline = t + p;
                task.next_release = t + p;
                task.miss_reported = false;
            }
        }

        // Global EDF selection.
        let mut eligible: Vec<(Slot, usize)> = tasks
            .iter()
            .enumerate()
            .filter(|(_, x)| x.active && x.remaining > 0)
            .map(|(i, x)| (x.deadline, i))
            .collect();
        eligible.sort();
        // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
        for &(_, i) in eligible.iter().take(processors as usize) {
            let task = &mut tasks[i];
            task.remaining -= 1;
            task.scheduled += 1;
            if task.remaining == 0 && t + 1 > task.deadline && !task.miss_reported {
                misses.push(EdfMiss {
                    task: TaskId::from_index(i),
                    deadline: task.deadline,
                    tardiness: t + 1 - task.deadline,
                });
                task.miss_reported = true;
            }
        }

        // Unfinished jobs past their deadline also count as misses.
        for (i, task) in tasks.iter_mut().enumerate() {
            if task.active && task.remaining > 0 && task.deadline == t + 1 && !task.miss_reported {
                misses.push(EdfMiss {
                    task: TaskId::from_index(i),
                    deadline: task.deadline,
                    tardiness: 1,
                });
                task.miss_reported = true;
            }
        }

        for task in tasks.iter_mut().filter(|x| x.active) {
            task.ps_total += task.ps_wt;
        }
    }

    EdfRun {
        misses,
        scheduled: tasks.iter().map(|x| x.scheduled).collect(),
        ps_totals: tasks.iter().map(|x| x.ps_total).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_static_set_meets_deadlines() {
        let mut w = Workload::new();
        // Two processors, four weight-1/2 tasks.
        for i in 0..4 {
            w.join(i, 0, 1, 2);
        }
        let run = run_global_edf(2, 40, &w, EdfReweightMode::AtBoundary);
        assert!(run.misses.is_empty());
        // Each task gets half the slots.
        for s in &run.scheduled {
            assert_eq!(*s, 20);
        }
    }

    #[test]
    fn at_boundary_delays_enactment() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 10);
        w.join(1, 0, 1, 10);
        w.reweight(0, 1, 1, 2); // wants 1/2 almost immediately
        let run = run_global_edf(1, 10, &w, EdfReweightMode::AtBoundary);
        // Until the boundary at t = 10 the task still runs one quantum
        // per 10 slots: it completes far less than I_PS promised.
        let pct = run.pct_of_ideal();
        assert!(pct[0] < 50.0, "pct = {pct:?}");
    }

    #[test]
    fn immediate_mode_tracks_ideal_but_can_miss() {
        // One processor, two tasks at weight 1/2; one doubles to 1 — an
        // overload only Immediate mode lets through mid-job.
        let mut w = Workload::new();
        w.join(0, 0, 2, 4);
        w.join(1, 0, 2, 4);
        w.reweight(0, 1, 9, 10);
        let run = run_global_edf(1, 20, &w, EdfReweightMode::Immediate);
        assert!(!run.misses.is_empty(), "overload should surface as misses");
    }

    #[test]
    fn leave_stops_scheduling() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 2);
        w.leave(0, 4);
        let run = run_global_edf(1, 10, &w, EdfReweightMode::AtBoundary);
        assert!(run.scheduled[0] <= 3);
    }
}
