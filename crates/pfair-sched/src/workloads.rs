//! Reusable synthetic workload generators.
//!
//! The benchmarks, stress tests, and experiment ablations all need
//! adaptable task systems with controlled shapes. This module provides
//! the standard ones:
//!
//! * [`uniform`] — `n` equal-weight tasks, the static baseline;
//! * [`burst`] — every task requests a new weight at the same instant
//!   (the `Ω(max(N, M log N))` simultaneous-reweight scenario of §6);
//! * [`ramp`] — one light task climbs to a target weight through many
//!   small steps (the up-ramp that punishes coarse-grained schemes);
//! * [`sawtooth`] — periodic up/down cycles per task, phase-staggered;
//! * [`churn`] — tasks continuously join and leave (the dynamic-system
//!   setting of Srinivasan & Anderson's rules J/L);
//! * [`random_adaptive`] — seeded random joins/reweights/delays for
//!   fuzz-style stress, always policed to feasibility;
//! * [`synthetic_population`] — `10⁵–10⁶` light aligned tasks for
//!   shard-supervisor scale-out runs (PR 10).

use crate::event::Workload;
use pfair_core::rational::Rational;
use pfair_core::time::Slot;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// `n` tasks of weight `num/den` joining at time 0.
pub fn uniform(n: u32, num: i128, den: i128) -> Workload {
    let mut w = Workload::new();
    for i in 0..n {
        w.join(i, 0, num, den);
    }
    w
}

/// [`uniform`] plus one simultaneous reweight of *every* task at `at`.
pub fn burst(n: u32, num: i128, den: i128, at: Slot, to_num: i128, to_den: i128) -> Workload {
    let mut w = uniform(n, num, den);
    for i in 0..n {
        w.reweight(i, at, to_num, to_den);
    }
    w
}

/// One task ramping from `1/from_den` to `1/to_den` (`to_den <
/// from_den`) in `steps` multiplicative steps starting at `start`,
/// `gap` slots apart, beside `n_background` weight-1/4 tasks.
#[allow(clippy::disallowed_types)] // float use is the generation knob documented below
pub fn ramp(
    from_den: i128,
    to_den: i128,
    steps: u32,
    start: Slot,
    gap: Slot,
    n_background: u32,
) -> Workload {
    assert!(to_den < from_den && to_den >= 2);
    let mut w = Workload::new();
    w.join(0, 0, 1, from_den);
    for i in 0..n_background {
        w.join(i + 1, 0, 1, 4);
    }
    // Geometric interpolation of denominators: float math is confined to
    // *choosing* integer weight parameters; the chosen weights are exact.
    // audit: allow(float, workload-generation knob; the produced weights are exact integers)
    let ratio = (from_den as f64 / to_den as f64).powf(1.0 / f64::from(steps)); // audit: allow(lossy-cast, workload-generation knob)
    for k in 1..=steps {
        // audit: allow(float, workload-generation knob; the produced weights are exact integers)
        let interp = (from_den as f64) / ratio.powi(k as i32); // audit: allow(lossy-cast, workload-generation knob)
                                                               // audit: allow(float, workload-generation knob; the produced weights are exact integers)
        let den = interp.round().max(to_den as f64) as i128; // audit: allow(lossy-cast, workload-generation knob)
        w.reweight(0, start + gap * Slot::from(k), 1, den.max(2));
    }
    w
}

/// `n` tasks cycling `lo → hi → lo` weights with period `period`,
/// phase-staggered so the system's total demand stays smooth.
pub fn sawtooth(
    n: u32,
    lo: (i128, i128),
    hi: (i128, i128),
    period: Slot,
    horizon: Slot,
) -> Workload {
    let mut w = Workload::new();
    for i in 0..n {
        w.join(i, 0, lo.0, lo.1);
        let phase = (period * Slot::from(i)) / Slot::from(n.max(1));
        let mut t = phase.max(1);
        while t + period / 2 < horizon {
            w.reweight(i, t, hi.0, hi.1);
            w.reweight(i, t + period / 2, lo.0, lo.1);
            t += period;
        }
    }
    w
}

/// Continuous join/leave churn: `n_slots`-long run where a rotating
/// population of `alive` tasks (from a pool of `pool`) each stays for
/// `lifetime` slots.
pub fn churn(pool: u32, alive: u32, lifetime: Slot, n_slots: Slot) -> Workload {
    let mut w = Workload::new();
    let alive = alive.min(pool);
    for i in 0..pool {
        let mut t = (Slot::from(i) * lifetime) / Slot::from(alive.max(1));
        while t < n_slots {
            w.join(i, t, 1, 2 * i128::from(alive));
            let leave_at = (t + lifetime).min(n_slots - 1);
            if leave_at > t {
                w.leave(i, leave_at);
            }
            t += lifetime * Slot::from(pool) / Slot::from(alive.max(1));
        }
    }
    w
}

/// Seeded random adaptive workload: `n` tasks, random light weights,
/// `events` random reweights/delays spread over `[1, horizon)`.
/// Intended to run with policing enabled (requests may sum past `m`).
pub fn random_adaptive(n: u32, events: u32, horizon: Slot, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = Workload::new();
    let rand_weight = {
        move |rng: &mut ChaCha8Rng| -> (i128, i128) {
            let den = rng.gen_range(3i128..=40);
            let num = rng.gen_range(1i128..=(den / 2).max(1));
            (num, den)
        }
    };
    for i in 0..n {
        let (num, den) = rand_weight(&mut rng);
        w.join(i, rng.gen_range(0..horizon / 4), num, den);
    }
    for _ in 0..events {
        let task = rng.gen_range(0..n);
        let at = rng.gen_range(1..horizon);
        // audit: allow(float, RNG event-mix probability; not scheduling arithmetic)
        if rng.gen_bool(0.85) {
            let (num, den) = rand_weight(&mut rng);
            w.reweight(task, at, num, den);
        } else {
            w.delay(task, at, rng.gen_range(1..6));
        }
    }
    w
}

/// Every window length [`synthetic_population`] draws from divides
/// this slot count, so any horizon that is a multiple of it closes
/// every task's final window exactly: in a miss-free run each task of
/// weight `1/L` is scheduled exactly `horizon / L` times. The
/// shard-count determinism suite leans on that alignment.
pub const POPULATION_ALIGNMENT: Slot = 8192;

/// Population-scale workload: `n` tasks joining at slot 0 with weights
/// `1/L`, `L` a power of two drawn deterministically (ChaCha8, seeded)
/// from `{512, …, 8192}`.
///
/// Shaped for [`crate::shard::ShardSet`] runs at `10⁵–10⁶` tasks: the
/// light power-of-two weights keep expected total utilization at
/// `n · 31/40960` (< 0.1 % each), so per-shard utilization stays
/// bounded and easy to provision — size `shards × processors_per_shard`
/// at or above [`join_utilization`] and every shard admits its members
/// under condition (W). All joins land at slot 0 and every window
/// divides [`POPULATION_ALIGNMENT`], making aligned horizons exact
/// (see the constant's docs). Fully deterministic in `(n, seed)`.
pub fn synthetic_population(n: u32, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = Workload::new();
    for i in 0..n {
        let den = 512i128 << rng.gen_range(0u32..5);
        w.join(i, 0, 1, den);
    }
    w
}

/// Total requested utilization of the joins in a workload (a quick
/// feasibility sniff for generated workloads).
pub fn join_utilization(w: &Workload) -> Rational {
    use crate::event::EventKind;
    w.sorted_events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Join(weight) => Some(weight.value()),
            _ => None,
        })
        .fold(Rational::ZERO, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use pfair_core::rational::rat;

    #[test]
    fn synthetic_population_is_deterministic_and_bounded() {
        let a = synthetic_population(2000, 7);
        assert_eq!(
            a.sorted_events(),
            synthetic_population(2000, 7).sorted_events()
        );
        assert_ne!(
            a.sorted_events(),
            synthetic_population(2000, 8).sorted_events()
        );
        let util = join_utilization(&a);
        assert!(util >= rat(2000, 8192) && util <= rat(2000, 512));
        assert!(a
            .sorted_events()
            .iter()
            .all(|e| e.at == 0 && matches!(e.kind, crate::event::EventKind::Join(_))));
    }

    #[test]
    fn uniform_and_burst_run_clean() {
        let r = simulate(SimConfig::oi(2, 60), &uniform(8, 1, 4));
        assert!(r.is_miss_free());
        let r = simulate(SimConfig::oi(2, 60), &burst(8, 1, 8, 10, 1, 5));
        assert!(r.is_miss_free());
        assert_eq!(r.counters.reweight_initiations, 8);
    }

    #[test]
    fn ramp_climbs_monotonically() {
        let w = ramp(40, 3, 10, 5, 8, 2);
        let mut last = rat(1, 40);
        for e in w.sorted_events() {
            if let crate::event::EventKind::Reweight(wt) = e.kind {
                assert!(wt.value() >= last, "ramp must not descend");
                last = wt.value();
            }
        }
        let r = simulate(SimConfig::oi(2, 200), &w);
        assert!(r.is_miss_free());
    }

    #[test]
    fn sawtooth_alternates() {
        let w = sawtooth(4, (1, 20), (1, 5), 40, 300);
        let r = simulate(SimConfig::oi(2, 300), &w);
        assert!(r.is_miss_free());
        assert!(r.counters.reweight_initiations > 20);
    }

    #[test]
    fn churn_joins_and_leaves() {
        let w = churn(6, 3, 30, 200);
        let r = simulate(SimConfig::oi(2, 200), &w);
        assert!(r.is_miss_free(), "misses: {:?}", r.misses);
    }

    #[test]
    fn random_adaptive_is_deterministic_and_safe() {
        let a = random_adaptive(6, 30, 200, 9);
        let b = random_adaptive(6, 30, 200, 9);
        assert_eq!(a.sorted_events(), b.sorted_events());
        let r = simulate(SimConfig::oi(2, 200), &a);
        assert!(r.is_miss_free());
    }

    #[test]
    fn join_utilization_sums() {
        let w = uniform(4, 1, 4);
        assert_eq!(join_utilization(&w), rat(1, 1));
    }
}
