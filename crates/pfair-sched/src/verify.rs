//! Independent verification of recorded schedules.
//!
//! The engine is trusted nowhere else in this crate's test suite: this
//! module re-validates a history-enabled [`SimResult`] from first
//! principles, checking every invariant the paper's model imposes,
//! *without* reusing the engine's own bookkeeping:
//!
//! * **Window structure** (Eqns (2)–(4)): every subtask's deadline and
//!   b-bit match its within-era rank and the era weight implied by the
//!   trace; era-opening releases restart the rank at 1.
//! * **Schedule sanity**: a subtask runs at most once, within its
//!   window, in index order, never in the same slot as a sibling, and
//!   never after a halt.
//! * **Processor capacity**: at most `M` subtasks run per slot.
//! * **Miss reporting**: the recorded misses are exactly the released,
//!   unhalted subtasks that were not scheduled before their deadlines.
//! * **Pfair lag window**: `−1 < lag < 1` against the per-slot `I_CSW`
//!   series reconstructed from the history.
//!
//! [`verify`] returns every violation found (empty = certified). The
//! property-test suites run it over randomized systems, so an engine
//! regression breaks loudly even where a metric-level assertion might
//! not notice.

use crate::trace::{SimResult, SubtaskRecord, TaskHistory};
use pfair_core::rational::{rat, Rational};
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use std::collections::BTreeMap;
use std::fmt;

/// One invariant violation found by the verifier.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The offending task (if the violation is task-scoped).
    pub task: Option<TaskId>,
    /// Human-readable description of what failed.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.task {
            Some(t) => write!(f, "{}: {}", t, self.what),
            None => write!(f, "{}", self.what),
        }
    }
}

fn v(task: Option<TaskId>, what: impl Into<String>) -> Violation {
    Violation {
        task,
        what: what.into(),
    }
}

/// Verifies a history-enabled result. Returns all violations found.
///
/// # Panics
/// Panics if the result lacks histories (run the simulation with
/// `record_history`).
pub fn verify(result: &SimResult) -> Vec<Violation> {
    let mut out = Vec::new();
    for task in &result.tasks {
        let hist = task
            .history
            .as_ref()
            // audit: allow(panic, documented precondition: caller must enable record_history)
            .expect("verify requires record_history");
        verify_windows(task.id, hist, &mut out);
        verify_schedule_sanity(task.id, hist, &mut out);
        verify_lag_window(task.id, hist, result.horizon, &mut out);
    }
    verify_capacity(result, &mut out);
    verify_misses(result, &mut out);
    out
}

/// Asserts the result verifies cleanly; panics with a readable report
/// otherwise. Test-suite convenience.
pub fn assert_verified(result: &SimResult) {
    let violations = verify(result);
    assert!(
        violations.is_empty(),
        "schedule verification failed:\n{}",
        violations
            .iter()
            .map(|x| format!("  - {x}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Windows follow Eqns (2)–(4) for the era weights implied by the
/// trace. The era weight is reconstructed from the era-opening
/// subtask's own window (deadline − release determines the window
/// length of rank 1, which pins ⌈1/w⌉; the chain then cross-checks
/// every later rank, so a wrong reconstruction surfaces immediately).
fn verify_windows(id: TaskId, hist: &TaskHistory, out: &mut Vec<Violation>) {
    let mut era: Vec<&SubtaskRecord> = Vec::new();
    let mut eras: Vec<Vec<&SubtaskRecord>> = Vec::new();
    for sub in &hist.subtasks {
        if sub.era_first {
            if !era.is_empty() {
                eras.push(std::mem::take(&mut era));
            }
        } else if era.is_empty() && !eras.is_empty() {
            out.push(v(
                Some(id),
                format!("subtask {} continues a closed era", sub.index),
            ));
        }
        era.push(sub);
    }
    if !era.is_empty() {
        eras.push(era);
    }

    for era in eras {
        let first = era[0];
        if !first.era_first {
            out.push(v(
                Some(id),
                format!(
                    "era starting at subtask {} not marked era_first",
                    first.index
                ),
            ));
            continue;
        }
        if let Err(what) = check_era_chain(&era) {
            out.push(v(
                Some(id),
                format!("era starting at subtask {}: {}", first.index, what),
            ));
        }
    }
}

/// Checks one era's window chain exactly. Releases give the observable
/// IS offsets (`θ` increments are `r_{k+1} − (d_k − b_k) ≥ 0`, Eqn (4));
/// normalizing them away leaves `D_k = d_k − r_1 − θ_k = ⌈k/w⌉`. Each
/// `b_k = 0` *pins* the weight to exactly `k / D_k`; each `b_k = 1`
/// constrains it to the open interval `(k/D_k, k/(D_k − 1))`. The chain
/// is valid iff all pins agree and the interval intersection admits the
/// pin (or is non-empty when nothing pins) — an exact reconstruction
/// that handles any rational weight, including admission-policed grants
/// with large denominators.
fn check_era_chain(era: &[&SubtaskRecord]) -> Result<(), String> {
    let r1 = era[0].window.release;
    let mut offset: Slot = 0;
    let mut pin: Option<Rational> = None;
    let mut lo = Rational::ZERO; // strict lower bound
    let mut hi = rat(2, 1); // strict upper bound (weights ≤ 1 < 2)
    for (k0, sub) in era.iter().enumerate() {
        // audit: allow(panic, era lengths are horizon-bounded and fit i128)
        let k = i128::try_from(k0).expect("era index exceeds i128") + 1;
        if k0 > 0 {
            let prev = era[k0 - 1];
            let sep = sub.window.release - prev.window.next_release();
            if sep < 0 && prev.halted_at.is_none() {
                return Err(format!(
                    "subtask {} released {} slots before d − b of its predecessor",
                    sub.index, -sep
                ));
            }
            offset += sep.max(0);
        }
        let dk = i128::from(sub.window.deadline - r1 - offset);
        if dk <= 0 {
            return Err(format!(
                "subtask {} has non-positive normalized deadline",
                sub.index
            ));
        }
        if sub.window.b {
            // k/dk < w < k/(dk − 1)
            lo = lo.max(rat(k, dk));
            if dk > 1 {
                hi = hi.min(rat(k, dk - 1));
            } else {
                return Err(format!(
                    "subtask {} has b = 1 with unit deadline",
                    sub.index
                ));
            }
        } else {
            let w = rat(k, dk);
            match pin {
                None => pin = Some(w),
                Some(p) if p != w => {
                    return Err(format!("b = 0 pins disagree: {p} vs {w}"));
                }
                _ => {}
            }
        }
    }
    match pin {
        Some(w) => {
            if !(w > lo && w < hi) {
                return Err(format!("pinned weight {w} violates interval ({lo}, {hi})"));
            }
            if !(w.is_positive() && w <= Rational::ONE) {
                return Err(format!("pinned weight {w} outside (0, 1]"));
            }
        }
        None => {
            if lo >= hi {
                return Err(format!("empty weight interval ({lo}, {hi})"));
            }
        }
    }
    Ok(())
}

/// Per-task schedule sanity.
fn verify_schedule_sanity(id: TaskId, hist: &TaskHistory, out: &mut Vec<Violation>) {
    let mut last_sched: Option<(u64, Slot)> = None;
    let mut seen_slots: BTreeMap<Slot, u64> = BTreeMap::new();
    for sub in &hist.subtasks {
        if let Some(s) = sub.scheduled_at {
            if let Some(h) = sub.halted_at {
                if s >= h {
                    out.push(v(
                        Some(id),
                        format!(
                            "subtask {} scheduled at {} after halt at {}",
                            sub.index, s, h
                        ),
                    ));
                }
            }
            if s < sub.window.release {
                out.push(v(
                    Some(id),
                    format!(
                        "subtask {} scheduled at {} before release {}",
                        sub.index, s, sub.window.release
                    ),
                ));
            }
            if let Some(prev) = seen_slots.insert(s, sub.index) {
                out.push(v(
                    Some(id),
                    format!("subtasks {} and {} share slot {}", prev, sub.index, s),
                ));
            }
            if let Some((pi, ps)) = last_sched {
                if ps >= s {
                    out.push(v(
                        Some(id),
                        format!(
                            "subtask {} (slot {}) ran no later than predecessor {} (slot {})",
                            sub.index, s, pi, ps
                        ),
                    ));
                }
            }
            last_sched = Some((sub.index, s));
        }
    }
    // The scheduled-slot list agrees with the subtask records.
    let mut from_subs: Vec<Slot> = hist
        .subtasks
        .iter()
        .filter_map(|s| s.scheduled_at)
        .collect();
    from_subs.sort();
    let mut listed = hist.scheduled_slots.clone();
    listed.sort();
    if from_subs != listed {
        out.push(v(
            Some(id),
            "scheduled_slots disagrees with subtask records",
        ));
    }
}

/// At most `M` quanta per slot across all tasks.
fn verify_capacity(result: &SimResult, out: &mut Vec<Violation>) {
    let mut per_slot: BTreeMap<Slot, u32> = BTreeMap::new();
    for task in &result.tasks {
        for s in &task
            .history
            .as_ref()
            // audit: allow(panic, documented precondition: caller must enable record_history)
            .expect("verify requires record_history")
            .scheduled_slots
        {
            *per_slot.entry(*s).or_insert(0) += 1;
        }
    }
    for (slot, count) in per_slot {
        if count > result.processors {
            out.push(v(
                None,
                format!(
                    "slot {} schedules {} > M = {}",
                    slot, count, result.processors
                ),
            ));
        }
    }
}

/// The recorded misses are exactly the subtasks that deserved one.
fn verify_misses(result: &SimResult, out: &mut Vec<Violation>) {
    let mut expected = Vec::new();
    for task in &result.tasks {
        for sub in &task
            .history
            .as_ref()
            // audit: allow(panic, documented precondition: caller must enable record_history)
            .expect("verify requires record_history")
            .subtasks
        {
            let scheduled_in_time = sub.scheduled_at.is_some_and(|s| s < sub.window.deadline);
            let within_horizon = sub.window.deadline <= result.horizon;
            if within_horizon && !scheduled_in_time && sub.halted_at.is_none() {
                expected.push((task.id, sub.index));
            }
        }
    }
    expected.sort();
    let mut recorded: Vec<(TaskId, u64)> =
        result.misses.iter().map(|m| (m.task, m.index)).collect();
    recorded.sort();
    if expected != recorded {
        out.push(v(
            None,
            format!("miss list mismatch: expected {expected:?}, recorded {recorded:?}"),
        ));
    }
}

/// The Pfair lag window against the reconstructed per-slot `I_CSW`.
fn verify_lag_window(id: TaskId, hist: &TaskHistory, horizon: Slot, out: &mut Vec<Violation>) {
    let lags = hist.lag_vs_icsw(horizon);
    for (t, lag) in lags.iter().enumerate() {
        if !(rat(-1, 1) < *lag && *lag < Rational::ONE) {
            out.push(v(Some(id), format!("lag {lag} at t = {t} outside (−1, 1)")));
            break; // one report per task suffices
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::event::Workload;

    fn history_run(weights: &[(i128, i128)], m: u32, horizon: Slot) -> SimResult {
        let mut w = Workload::new();
        for (i, (n, d)) in weights.iter().enumerate() {
            w.join(i as u32, 0, *n, *d);
        }
        simulate(SimConfig::oi(m, horizon).with_history(), &w)
    }

    #[test]
    fn clean_run_verifies() {
        let r = history_run(&[(1, 2), (1, 3), (1, 6)], 1, 60);
        assert_verified(&r);
    }

    #[test]
    fn reweighted_run_verifies() {
        let mut w = Workload::new();
        w.join(0, 0, 3, 20);
        w.join(1, 0, 2, 5);
        w.reweight(0, 9, 1, 2);
        w.reweight(1, 17, 1, 5);
        let r = simulate(SimConfig::oi(2, 80).with_history(), &w);
        assert_verified(&r);
    }

    #[test]
    fn tampered_schedule_is_caught() {
        let mut r = history_run(&[(1, 2)], 1, 20);
        // Claim a quantum the engine never scheduled.
        let hist = r.tasks[0].history.as_mut().unwrap();
        hist.subtasks[1].scheduled_at = hist.subtasks[0].scheduled_at;
        let violations = verify(&r);
        assert!(!violations.is_empty());
    }

    #[test]
    fn tampered_window_is_caught() {
        let mut r = history_run(&[(2, 5)], 1, 20);
        let hist = r.tasks[0].history.as_mut().unwrap();
        hist.subtasks[1].window.deadline += 2; // break Eqn (2)
        let violations = verify(&r);
        assert!(
            violations
                .iter()
                .any(|x| x.what.contains("era starting at")),
            "got: {violations:?}"
        );
    }

    #[test]
    fn hidden_miss_is_caught() {
        let mut r = history_run(&[(1, 2)], 1, 20);
        r.misses.clear();
        let hist = r.tasks[0].history.as_mut().unwrap();
        hist.subtasks[3].scheduled_at = None; // pretend it never ran …
                                              // … without recording a miss: the verifier must object (either
                                              // as a miss-list mismatch or a scheduled_slots inconsistency).
        let violations = verify(&r);
        assert!(!violations.is_empty());
    }

    #[test]
    #[should_panic(expected = "verify requires record_history")]
    fn historyless_result_panics() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 2);
        let r = simulate(SimConfig::oi(1, 10), &w);
        let _ = verify(&r);
    }
}
