//! SVG rendering of schedules: the paper's window diagrams (Figs. 1,
//! 3, 4, 6–9) as standalone vector images, generated from simulation
//! traces.
//!
//! Layout follows the paper's visual convention: one row per subtask,
//! a hollow rectangle for the window `[r, d)`, a filled cell for the
//! slot PD² scheduled it in, a cross for a halt, a heavy left edge on
//! era-opening windows, and a slot ruler along the top. No external
//! dependencies — the SVG is assembled textually.

use crate::trace::{SimResult, SubtaskRecord};
use pfair_core::time::Slot;
use std::fmt::Write as _;

/// Pixel size of one slot cell.
const CELL: i64 = 14;
/// Row height per subtask.
const ROW: i64 = 18;
/// Left margin for task labels.
const MARGIN: i64 = 64;
/// Top margin for the ruler.
const TOP: i64 = 28;

/// Renders every task of a history-enabled result into one SVG
/// document covering slots `[0, horizon)`.
///
/// # Panics
/// Panics if the result lacks histories.
pub fn render_svg(result: &SimResult, horizon: Slot) -> String {
    let horizon = horizon.min(result.horizon);
    let mut rows: Vec<(String, SubtaskRecord)> = Vec::new();
    for task in &result.tasks {
        let hist = task
            .history
            .as_ref()
            .expect("render_svg requires record_history");
        for sub in &hist.subtasks {
            if sub.window.release < horizon {
                rows.push((task.id.to_string(), *sub));
            }
        }
    }
    let width = MARGIN + horizon * CELL + 16;
    let height = TOP + rows.len() as i64 * ROW + 16;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="10">"#
    );
    ruler(&mut out, horizon);
    for (i, (label, sub)) in rows.iter().enumerate() {
        let y = TOP + i as i64 * ROW;
        subtask_row(&mut out, label, sub, y, horizon);
    }
    out.push_str("</svg>\n");
    out
}

fn ruler(out: &mut String, horizon: Slot) {
    for t in (0..=horizon).step_by(5) {
        let x = MARGIN + t * CELL;
        let _ = writeln!(out, r##"<text x="{x}" y="14" fill="#555">{t}</text>"##);
        let _ = writeln!(
            out,
            r##"<line x1="{x}" y1="18" x2="{x}" y2="22" stroke="#999"/>"##
        );
    }
}

fn subtask_row(out: &mut String, label: &str, sub: &SubtaskRecord, y: i64, horizon: Slot) {
    let _ = writeln!(
        out,
        r##"<text x="4" y="{}" fill="#000">{}_{}</text>"##,
        y + 12,
        label,
        sub.index
    );
    let x0 = MARGIN + sub.window.release * CELL;
    let x1 = MARGIN + sub.window.deadline.min(horizon) * CELL;
    // The window outline.
    let _ = writeln!(
        out,
        r##"<rect x="{}" y="{}" width="{}" height="{}" fill="none" stroke="{}" stroke-width="{}"/>"##,
        x0,
        y + 2,
        (x1 - x0).max(2),
        ROW - 6,
        if sub.halted_at.is_some() {
            "#b55"
        } else {
            "#333"
        },
        if sub.era_first { 2 } else { 1 }
    );
    // Scheduled slot fill.
    if let Some(s) = sub.scheduled_at {
        if s < horizon {
            let _ = writeln!(
                out,
                r##"<rect x="{}" y="{}" width="{}" height="{}" fill="#4a7" opacity="0.8"/>"##,
                MARGIN + s * CELL + 1,
                y + 3,
                CELL - 2,
                ROW - 8
            );
        }
    }
    // Halt cross.
    if let Some(h) = sub.halted_at {
        if h < horizon {
            let hx = MARGIN + h * CELL;
            let _ = writeln!(
                out,
                r##"<path d="M{} {} l{} {} m0 -{} l-{} {}" stroke="#b00" stroke-width="2" fill="none"/>"##,
                hx + 2,
                y + 4,
                CELL - 4,
                ROW - 10,
                ROW - 10,
                CELL - 4,
                ROW - 10
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::event::Workload;

    fn demo_result() -> SimResult {
        let mut w = Workload::new();
        w.join(0, 0, 3, 20);
        w.join(1, 0, 2, 5);
        w.reweight(0, 9, 1, 2);
        simulate(SimConfig::oi(2, 40).with_history(), &w)
    }

    #[test]
    fn produces_well_formed_svg() {
        let svg = render_svg(&demo_result(), 40);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced: one opening svg, one closing.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn draws_windows_schedules_and_labels() {
        let svg = render_svg(&demo_result(), 40);
        assert!(svg.contains("T0_1"));
        assert!(svg.contains("T1_1"));
        assert!(svg.contains(r##"fill="#4a7""##), "scheduled slots drawn");
        assert!(svg.matches("<rect").count() > 10);
    }

    #[test]
    fn halted_subtasks_are_marked() {
        // Force a rule-O halt: unscheduled subtask reweighted.
        let mut w = Workload::new();
        w.join(0, 0, 3, 20);
        for i in 1..=19 {
            w.join(i, 0, 3, 20);
        }
        w.reweight(0, 10, 1, 2);
        let r = simulate(
            SimConfig::oi(4, 24)
                .with_tie_break(crate::priority::TieBreak::TaskIdDesc)
                .with_history(),
            &w,
        );
        let had_halt = r.tasks[0]
            .history
            .as_ref()
            .unwrap()
            .subtasks
            .iter()
            .any(|s| s.halted_at.is_some());
        let svg = render_svg(&r, 24);
        if had_halt {
            assert!(svg.contains(r##"stroke="#b00""##), "halt cross drawn");
        }
    }

    #[test]
    fn horizon_clips_rows() {
        let svg_short = render_svg(&demo_result(), 10);
        let svg_long = render_svg(&demo_result(), 40);
        assert!(svg_short.len() < svg_long.len());
    }
}
