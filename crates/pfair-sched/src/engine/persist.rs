//! Engine snapshot & restore: a complete, exact image of a running
//! simulation at a slot boundary.
//!
//! ## Persistence invariant
//!
//! `snapshot` at slot `k`, serialize through [`pfair_json`], parse,
//! [`Engine::restore`], run to the horizon — the rendered result,
//! counters, misses, and drift samples are **bit-identical** to the
//! uninterrupted run. The `recovery_equivalence` suite pins this under
//! randomized OI/LJ/hybrid scripts and both drivers.
//!
//! Everything the slot pipeline can observe is captured **exactly**:
//!
//! - per-task state with exact rationals (weights, tracker
//!   accumulators, drift samples) — no floats anywhere;
//! - the ready queue as its sorted entry list (the heap's internal
//!   array layout is unobservable: `QueueEntry`'s order is total, so
//!   equal multisets of entries pop identically);
//! - the three calendar rings (releases, enactments, departures) as
//!   `(slot, entries)` pairs plus the far-future overflow list;
//! - pending reweight commitments, admission commitments, hybrid
//!   selector state, probe-independent overhead counters, and the
//!   event stream with its cursor.
//!
//! Two kinds of state are deliberately **not** serialized, because they
//! are deterministic functions of what is:
//!
//! - the per-era window memo (`win_cache`): validated lazily against
//!   the scheduling weight at every use, so a restored engine rebuilds
//!   it on first release;
//! - the tie table: rebuilt from `config.tie_break` and the task count.
//!
//! History-mode runs (`record_history`) are refused: their per-slot
//! accumulators grow with the horizon and belong in a [`SimResult`]
//! (via [`Engine::finish`]), not in a checkpoint.
//!
//! Decoders re-validate every cross-field invariant they can state
//! (dense task ids, index-ordered subtask records, cursor bounds,
//! ring-window membership), so a corrupted or hand-edited snapshot
//! yields an `Err`, never a panicking or silently-wrong engine.

use super::slab::TaskSlab;
use super::{Engine, PendKind, Pending, SimConfig, SubRec, TaskState};
use crate::admission::AdmissionController;
use crate::calendar::CalendarRing;
use crate::event::Event;
use crate::overhead::Counters;
use crate::priority::{Priority, TieTable};
use crate::queue::{QueueEntry, ReadyQueue};
use crate::reweight::RuleSelector;
use crate::trace::Miss;
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::{Slot, NEVER};
use pfair_json::{obj, FromJson, Json, JsonError, ToJson};
use pfair_obs::Probe;

impl ToJson for PendKind {
    fn to_json(&self) -> Json {
        match self {
            PendKind::Enact => "enact".to_string().to_json(),
            PendKind::ReleaseOnly => "release_only".to_string().to_json(),
        }
    }
}

impl FromJson for PendKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = String::from_json(value)?;
        match kind.as_str() {
            "enact" => Ok(PendKind::Enact),
            "release_only" => Ok(PendKind::ReleaseOnly),
            other => Err(JsonError::new(format!("unknown pending kind `{other}`"))),
        }
    }
}

impl ToJson for Pending {
    fn to_json(&self) -> Json {
        obj([
            ("target", self.target.to_json()),
            ("at", self.at.to_json()),
            ("kind", self.kind.to_json()),
            ("initiated_at", self.initiated_at.to_json()),
        ])
    }
}

impl FromJson for Pending {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Pending {
            target: value.field("target")?,
            at: value.field("at")?,
            kind: value.field("kind")?,
            initiated_at: value.field("initiated_at")?,
        })
    }
}

impl ToJson for SubRec {
    fn to_json(&self) -> Json {
        obj([
            ("index", self.index.to_json()),
            ("window", self.window.to_json()),
            ("group_deadline", self.group_deadline.to_json()),
            ("era_first", self.era_first.to_json()),
            ("scheduled_at", self.scheduled_at.to_json()),
            ("halted_at", self.halted_at.to_json()),
            ("isw_completion", self.isw_completion.to_json()),
            ("missed", self.missed.to_json()),
        ])
    }
}

impl FromJson for SubRec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(SubRec {
            index: value.field("index")?,
            window: value.field("window")?,
            group_deadline: value.field("group_deadline")?,
            era_first: value.field("era_first")?,
            scheduled_at: value.field("scheduled_at")?,
            halted_at: value.field("halted_at")?,
            isw_completion: value.field("isw_completion")?,
            missed: value.field("missed")?,
        })
    }
}

// The packed `u128` key is not serialized raw: the four fields are laid
// out explicitly (a snapshot is an interchange format, not a memory
// dump) and repacked on decode. `Priority::pack` clamps each field the
// same way the original pack did, so a round trip is bit-exact.
impl ToJson for QueueEntry {
    fn to_json(&self) -> Json {
        obj([
            ("deadline", self.priority.deadline().to_json()),
            ("b", self.priority.b().to_json()),
            ("group_deadline", self.priority.group_deadline().to_json()),
            ("tie_rank", self.priority.tie_rank().to_json()),
            ("task", self.task.to_json()),
            ("index", self.index.to_json()),
        ])
    }
}

impl FromJson for QueueEntry {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(QueueEntry {
            priority: Priority::pack(
                value.field("deadline")?,
                value.field("b")?,
                value.field("group_deadline")?,
                value.field("tie_rank")?,
            ),
            task: value.field("task")?,
            index: value.field("index")?,
        })
    }
}

impl ToJson for SimConfig {
    fn to_json(&self) -> Json {
        obj([
            ("processors", self.processors.to_json()),
            ("horizon", self.horizon.to_json()),
            ("scheme", self.scheme.to_json()),
            ("tie_break", self.tie_break.to_json()),
            ("admission", self.admission.to_json()),
            ("record_history", self.record_history.to_json()),
            ("tickless", self.tickless.to_json()),
            ("busy_span", self.busy_span.to_json()),
        ])
    }
}

impl FromJson for SimConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let horizon: Slot = value.field("horizon")?;
        if horizon < 0 {
            return Err(JsonError::new("negative simulation horizon"));
        }
        Ok(SimConfig {
            processors: value.field("processors")?,
            horizon,
            scheme: value.field("scheme")?,
            tie_break: value.field("tie_break")?,
            admission: value.field("admission")?,
            record_history: value.field("record_history")?,
            tickless: value.field("tickless")?,
            busy_span: value.field("busy_span")?,
        })
    }
}

/// One task in interchange form: the cold [`TaskState`] row plus the
/// four hot slab columns, flattened into the same per-task JSON object
/// the format has always used (the storage split is an in-memory
/// layout decision, not an interchange change).
#[derive(Clone, Debug)]
struct TaskSnap {
    state: TaskState,
    in_system: bool,
    swt: Rational,
    next_release: Option<Slot>,
    ran_last_slot: bool,
}

impl ToJson for TaskSnap {
    fn to_json(&self) -> Json {
        // `win_cache` is a weight-validated memo and the four history
        // accumulators are empty outside history mode (which `snapshot`
        // refuses); neither is part of the interchange format.
        obj([
            ("id", self.state.id.to_json()),
            ("in_system", self.in_system.to_json()),
            ("wt", self.state.wt.to_json()),
            ("swt", self.swt.to_json()),
            ("era_base", self.state.era_base.to_json()),
            ("next_index", self.state.next_index.to_json()),
            ("era_open_pending", self.state.era_open_pending.to_json()),
            ("next_release", self.next_release.to_json()),
            (
                "subs",
                self.state
                    .subs
                    .iter()
                    .copied()
                    .collect::<Vec<SubRec>>()
                    .to_json(),
            ),
            ("pending", self.state.pending.to_json()),
            ("leaving", self.state.leaving.to_json()),
            ("last_scheduled", self.state.last_scheduled.to_json()),
            ("isw", self.state.isw.to_json()),
            ("ps", self.state.ps.to_json()),
            ("drift", self.state.drift.to_json()),
            ("scheduled_count", self.state.scheduled_count.to_json()),
            ("last_cpu", self.state.last_cpu.to_json()),
            ("ran_last_slot", self.ran_last_slot.to_json()),
        ])
    }
}

impl FromJson for TaskSnap {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let next_index: u64 = value.field("next_index")?;
        let era_base: u64 = value.field("era_base")?;
        let subs: Vec<SubRec> = value.field("subs")?;
        if next_index == 0 {
            return Err(JsonError::new("task next_index must be at least 1"));
        }
        if era_base >= next_index {
            return Err(JsonError::new("task era_base at or past next_index"));
        }
        if subs.windows(2).any(|w| w[0].index >= w[1].index) {
            return Err(JsonError::new("subtask records out of index order"));
        }
        if subs.iter().any(|s| s.index >= next_index) {
            return Err(JsonError::new("subtask record at or past next_index"));
        }
        Ok(TaskSnap {
            state: TaskState {
                id: value.field("id")?,
                wt: value.field("wt")?,
                era_base,
                next_index,
                era_open_pending: value.field("era_open_pending")?,
                subs: subs.into_iter().collect(),
                pending: value.field("pending")?,
                leaving: value.field("leaving")?,
                last_scheduled: value.field("last_scheduled")?,
                win_cache: None,
                isw: value.field("isw")?,
                ps: value.field("ps")?,
                drift: value.field("drift")?,
                scheduled_count: value.field("scheduled_count")?,
                last_cpu: value.field("last_cpu")?,
                archived: Vec::new(),
                scheduled_slots: Vec::new(),
                isw_per_slot: Vec::new(),
                halted_corrections: Vec::new(),
            },
            in_system: value.field("in_system")?,
            swt: value.field("swt")?,
            next_release: value.field("next_release")?,
            ran_last_slot: value.field("ran_last_slot")?,
        })
    }
}

/// A calendar ring projected onto interchange form: the rotation base,
/// the occupied in-window slots with their (insertion-ordered) entry
/// lists, and the far-future overflow list. `CalendarRing::from_parts`
/// re-validates window membership on the way back in.
#[derive(Clone, Debug)]
struct RingSnap {
    base: Slot,
    buckets: Vec<(Slot, Vec<TaskId>)>,
    overflow: Vec<(Slot, TaskId)>,
}

impl RingSnap {
    fn of(ring: &CalendarRing) -> RingSnap {
        let (base, buckets, overflow) = ring.persist_parts();
        RingSnap {
            base,
            buckets,
            overflow,
        }
    }

    fn into_ring(self) -> Result<CalendarRing, String> {
        CalendarRing::from_parts(self.base, self.buckets, self.overflow)
    }
}

impl ToJson for RingSnap {
    fn to_json(&self) -> Json {
        obj([
            ("base", self.base.to_json()),
            ("buckets", self.buckets.to_json()),
            ("overflow", self.overflow.to_json()),
        ])
    }
}

impl FromJson for RingSnap {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(RingSnap {
            base: value.field("base")?,
            buckets: value.field("buckets")?,
            overflow: value.field("overflow")?,
        })
    }
}

/// A complete, exact image of an [`Engine`] at a slot boundary.
///
/// Produced by [`Engine::snapshot`]/[`Engine::snapshot_at`], consumed
/// by [`Engine::restore`]; serialized canonically through
/// [`pfair_json`] (see the module docs for the invariant the format
/// upholds). The snapshot is self-contained: it embeds the
/// configuration and the full event stream with its cursor, so
/// resuming needs no access to the original workload file.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    config: SimConfig,
    events: Vec<Event>,
    next_event: usize,
    injected: Vec<Event>,
    tasks: Vec<TaskSnap>,
    queue: Vec<QueueEntry>,
    selector: RuleSelector,
    committed: Vec<Rational>,
    counters: Counters,
    misses: Vec<Miss>,
    now: Slot,
    release_at: RingSnap,
    enact_at: RingSnap,
    leave_at: RingSnap,
}

impl EngineSnapshot {
    /// The slot the engine was captured at (the next slot it will
    /// simulate after [`Engine::restore`]).
    pub fn now(&self) -> Slot {
        self.now
    }

    /// The configured horizon of the captured run.
    pub fn horizon(&self) -> Slot {
        self.config.horizon
    }

    /// The captured configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of tasks in the captured task slab.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Cross-field invariants shared by the decoder and
    /// [`Engine::restore`]: dense ids, sized side tables, in-range
    /// cursors. Ring-window membership is checked separately by
    /// `CalendarRing::from_parts`.
    fn validate(&self) -> Result<(), String> {
        if self.config.record_history {
            return Err("snapshots never carry history-mode state".to_string());
        }
        let n = self.tasks.len();
        for (i, task) in self.tasks.iter().enumerate() {
            if task.state.id.idx() != i {
                return Err(format!(
                    "task slab not dense: slot {i} holds {}",
                    task.state.id
                ));
            }
        }
        if self.selector.task_slots() != n {
            return Err("selector state table does not match the task count".to_string());
        }
        if self.committed.len() != n {
            return Err("admission commitment table does not match the task count".to_string());
        }
        if self.now < 0 || self.now > self.config.horizon {
            return Err(format!(
                "snapshot slot {} outside [0, {}]",
                self.now, self.config.horizon
            ));
        }
        if self.next_event > self.events.len() {
            return Err("event cursor past the end of the stream".to_string());
        }
        if let Some(e) = self.queue.iter().find(|e| e.task.idx() >= n) {
            return Err(format!("ready-queue entry for unknown task {}", e.task));
        }
        Ok(())
    }
}

impl ToJson for EngineSnapshot {
    fn to_json(&self) -> Json {
        obj([
            ("config", self.config.to_json()),
            ("events", self.events.to_json()),
            ("next_event", self.next_event.to_json()),
            ("injected", self.injected.to_json()),
            ("tasks", self.tasks.to_json()),
            ("queue", self.queue.to_json()),
            ("selector", self.selector.to_json()),
            ("committed", self.committed.to_json()),
            ("counters", self.counters.to_json()),
            ("misses", self.misses.to_json()),
            ("now", self.now.to_json()),
            ("release_at", self.release_at.to_json()),
            ("enact_at", self.enact_at.to_json()),
            ("leave_at", self.leave_at.to_json()),
        ])
    }
}

impl FromJson for EngineSnapshot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let snap = EngineSnapshot {
            config: value.field("config")?,
            events: value.field("events")?,
            next_event: value.field("next_event")?,
            injected: value.field("injected")?,
            tasks: value.field("tasks")?,
            queue: value.field("queue")?,
            selector: value.field("selector")?,
            committed: value.field("committed")?,
            counters: value.field("counters")?,
            misses: value.field("misses")?,
            now: value.field("now")?,
            release_at: value.field("release_at")?,
            enact_at: value.field("enact_at")?,
            leave_at: value.field("leave_at")?,
        };
        snap.validate().map_err(JsonError::new)?;
        Ok(snap)
    }
}

impl<P: Probe> Engine<P> {
    /// The engine's static configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Captures the complete engine state at the current slot boundary.
    ///
    /// Fails for history-mode runs: their per-slot accumulators grow
    /// with the horizon and are excluded from the persistence format
    /// (collect a [`crate::trace::SimResult`] instead). Probe state is
    /// *not* captured — observing callers persist their probe
    /// separately (e.g. a metrics registry snapshot) and rebuild it at
    /// restore.
    pub fn snapshot(&self) -> Result<EngineSnapshot, String> {
        if self.config.record_history {
            return Err(
                "history-mode runs cannot be snapshotted: per-slot series are unbounded; \
                 collect a SimResult instead"
                    .to_string(),
            );
        }
        let tasks = (0..self.tasks.len())
            .map(|i| {
                // audit: allow(lossy-cast, slab ids stay within u32 by construction)
                let id = TaskId(i as u32);
                let mut state = self.tasks.task(id).clone();
                // Canonical form: the memo is rebuilt on first use.
                state.win_cache = None;
                TaskSnap {
                    state,
                    in_system: self.tasks.in_system(id),
                    swt: self.tasks.swt(id),
                    next_release: self.tasks.next_release(id),
                    ran_last_slot: self.tasks.ran_last_slot(id),
                }
            })
            .collect();
        Ok(EngineSnapshot {
            config: self.config.clone(),
            events: self.events.clone(),
            next_event: self.next_event,
            injected: self.injected.clone(),
            tasks,
            queue: self.queue.entries_sorted(),
            selector: self.selector.clone(),
            committed: self.admission.committed_parts().to_vec(),
            counters: self.counters,
            misses: self.misses.clone(),
            now: self.now,
            release_at: RingSnap::of(&self.release_at),
            enact_at: RingSnap::of(&self.enact_at),
            leave_at: RingSnap::of(&self.leave_at),
        })
    }

    /// Runs the engine forward to slot `slot` (clamped to the horizon)
    /// and captures it there.
    ///
    /// Advancing uses the per-slot pipeline regardless of
    /// `config.tickless`; the tickless invariant (see
    /// [`Engine::run`]) makes the state at any boundary identical
    /// under both drivers, so the captured image — and every run
    /// resumed from it — is too.
    pub fn snapshot_at(&mut self, slot: Slot) -> Result<EngineSnapshot, String> {
        if slot < self.now {
            return Err(format!(
                "cannot snapshot at slot {slot}: the engine is already at {}",
                self.now
            ));
        }
        let stop = slot.min(self.config.horizon);
        while self.now < stop {
            self.step();
        }
        self.snapshot()
    }

    /// Rebuilds a running engine from a snapshot; the resumed run is
    /// bit-identical to the uninterrupted one (module docs).
    ///
    /// Derived state is reconstructed rather than trusted: the tie
    /// table comes from `config.tie_break`, the ready heap from the
    /// canonical sorted entry list (no push counters are re-counted —
    /// the snapshot's [`Counters`] already include those pushes), and
    /// the per-era window memos start cold.
    pub fn restore(snapshot: EngineSnapshot, probe: P) -> Result<Engine<P>, String> {
        snapshot.validate()?;
        let n = u32::try_from(snapshot.tasks.len())
            .map_err(|_| "task count exceeds the id space".to_string())?;
        let tie = TieTable::new(&snapshot.config.tie_break, n);
        let release_at = snapshot.release_at.into_ring()?;
        let enact_at = snapshot.enact_at.into_ring()?;
        let leave_at = snapshot.leave_at.into_ring()?;
        // Re-column the flattened task images: cold rows into the slab,
        // hot values back into the dense columns.
        let mut tasks = TaskSlab::new(n);
        for snap in snapshot.tasks {
            let id = snap.state.id;
            tasks.set_in_system(id, snap.in_system);
            tasks.set_swt(id, snap.swt);
            tasks.set_next_release(id, snap.next_release);
            tasks.set_ran(id, snap.ran_last_slot);
            *tasks.task_mut(id) = snap.state;
        }
        // Derived per-run state rebuilt rather than trusted: last slot's
        // chosen set from the ran column, the injected-event floor from
        // the injected list, the miss watch from pending subtasks, and
        // the run-segment limit back at the horizon (a restored engine
        // is not inside any `run_to` segment).
        let last_chosen = tasks.ran_ids();
        let injected_min = snapshot
            .injected
            .iter()
            .map(|e| e.at)
            .min()
            .unwrap_or(NEVER);
        let run_limit = snapshot.config.horizon;
        let mut engine = Engine {
            probe,
            selector: snapshot.selector,
            admission: AdmissionController::from_parts(
                snapshot.config.admission,
                snapshot.config.processors,
                snapshot.committed,
            ),
            events: snapshot.events,
            next_event: snapshot.next_event,
            tasks,
            queue: ReadyQueue::from_entries(snapshot.queue),
            counters: snapshot.counters,
            misses: snapshot.misses,
            now: snapshot.now,
            injected: snapshot.injected,
            injected_min,
            last_chosen,
            touched: Vec::new(),
            miss_watch: std::collections::BinaryHeap::new(),
            run_limit,
            tie,
            release_at,
            enact_at,
            leave_at,
            // Busy-span batching re-arms from scratch: an armed probe is
            // a pure optimization hint and deliberately not part of the
            // interchange format (jumps are verified no-ops, so a cold
            // restart cannot change the trajectory).
            busy: super::busy_span::BusySpanState::default(),
            busy_span_jumps: 0,
            config: snapshot.config,
        };
        engine.rebuild_miss_watch();
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Workload;
    use pfair_obs::NoopProbe;

    fn busy_workload() -> Workload {
        let mut w = Workload::new();
        for t in 0..6 {
            w.join(t, 0, 3, 20);
        }
        w.reweight(0, 7, 1, 2);
        w.reweight(1, 11, 1, 4);
        w.delay(2, 9, 4);
        w.leave(3, 13);
        w.reweight(4, 15, 2, 5);
        w
    }

    /// Snapshot at k, restore, run to H — identical to the straight
    /// run (the full randomized matrix lives in the recovery suite;
    /// this is the in-crate smoke check).
    #[test]
    fn restore_resumes_bit_identically() {
        let config = SimConfig::oi(2, 40);
        let w = busy_workload();
        let reference = super::super::simulate(config.clone(), &w);
        let mut engine = Engine::new(config, &w);
        let snap = engine.snapshot_at(17).expect("snapshot");
        let json = snap.to_json().to_string_pretty();
        let parsed: EngineSnapshot =
            FromJson::from_json(&Json::parse(&json).expect("parse")).expect("decode");
        let mut resumed = Engine::restore(parsed, NoopProbe).expect("restore");
        resumed.run();
        let a = reference.to_json().to_string_pretty();
        let b = resumed.finish().to_json().to_string_pretty();
        assert_eq!(a, b);
    }

    /// The serialized form is canonical: encode → decode → encode is
    /// byte-identical.
    #[test]
    fn snapshot_encoding_is_canonical() {
        let mut engine = Engine::new(SimConfig::leave_join(2, 40), &busy_workload());
        let snap = engine.snapshot_at(12).expect("snapshot");
        let first = snap.to_json().to_string_pretty();
        let parsed: EngineSnapshot =
            FromJson::from_json(&Json::parse(&first).expect("parse")).expect("decode");
        assert_eq!(first, parsed.to_json().to_string_pretty());
    }

    /// History-mode engines refuse to snapshot.
    #[test]
    fn history_mode_is_refused() {
        let config = SimConfig::oi(2, 40).with_history();
        let engine = Engine::new(config, &busy_workload());
        assert!(engine.snapshot().is_err());
    }

    /// A tampered snapshot (event cursor out of range) decodes to Err.
    #[test]
    fn corrupted_cursor_is_rejected() {
        let mut engine = Engine::new(SimConfig::oi(2, 40), &busy_workload());
        let snap = engine.snapshot_at(5).expect("snapshot");
        let json = snap.to_json().to_string_pretty();
        let cursor = format!("\"next_event\": {}", snap.next_event);
        let tampered = json.replace(&cursor, "\"next_event\": 99");
        assert_ne!(json, tampered, "cursor field not found in the encoding");
        let parsed = Json::parse(&tampered).expect("still valid JSON");
        assert!(EngineSnapshot::from_json(&parsed).is_err());
    }
}
