//! Arena/SoA task storage: the engine's per-task state, split into hot
//! columns and cold rows, keyed by the dense small-integer [`TaskId`].
//!
//! The per-slot path asks four questions about arbitrary tasks — is it
//! present? did it run last slot? what is its scheduling weight? when
//! is its next release? — and those four fields are what every
//! whole-set scan (busy-span period detection, queue-liveness checks,
//! the ran-flag sweep) actually touches. They live here as dense
//! columns: two word-scanned [`IdBitmap`]s (the `CalendarRing`
//! occupancy-map idiom) plus two flat `Vec`s, so a scan over 10⁶ tasks
//! is cache-linear instead of striding over ~300-byte structs.
//! Everything else — subtask records, trackers, history — stays in the
//! cold [`TaskState`] row, touched only for tasks an event or a
//! scheduling decision actually names. (The fifth hot datum, the packed
//! PD² priority key, lives in the ready queue's entries already.)
//!
//! ## The one panic-reach escape
//!
//! Engine code used to index `Vec<TaskState>` directly at ~15 call
//! sites, each carrying its own panic-reach allowance annotation. The
//! slab replaces them with checked [`TaskSlab::get`] /
//! [`TaskSlab::get_mut`] accessors plus exactly one documented escape:
//! [`TaskSlab::task`] / [`TaskSlab::task_mut`], which expect the id to
//! be in range. Ids come from admitted events and queue entries, both
//! validated against the dense id range at admission, so the escape is
//! unreachable in a correct engine — and now there is a single place
//! stating that argument instead of one per call site.

use pfair_core::arena::IdBitmap;
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::{Slot, NEVER};

use super::TaskState;

/// Dense arena of per-task engine state: hot columns + cold rows.
#[derive(Clone, Debug)]
pub(super) struct TaskSlab {
    /// Cold rows: everything not named in a whole-set scan.
    cold: Vec<TaskState>,
    /// Hot column: task is in the system (`in_system`).
    present: IdBitmap,
    /// Hot column: task ran in the previous slot (`ran_last_slot`).
    ran: IdBitmap,
    /// Hot column: scheduling weight `swt(T, t)`.
    swt: Vec<Rational>,
    /// Hot column: next scheduled release ([`NEVER`] = suppressed).
    next_release: Vec<Slot>,
}

impl TaskSlab {
    /// A slab of `n` placeholder tasks with ids `0..n`.
    pub(super) fn new(n: u32) -> TaskSlab {
        let mut slab = TaskSlab {
            cold: Vec::new(),
            present: IdBitmap::new(0),
            ran: IdBitmap::new(0),
            swt: Vec::new(),
            next_release: Vec::new(),
        };
        slab.ensure(n);
        slab
    }

    /// Number of task slots (present or not).
    pub(super) fn len(&self) -> usize {
        self.cold.len()
    }

    /// Grows the slab to hold ids `0..n` (no-op when already that big);
    /// new slots are placeholders.
    pub(super) fn ensure(&mut self, n: u32) {
        // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
        let n = n as usize;
        if n <= self.cold.len() {
            return;
        }
        for i in self.cold.len()..n {
            // audit: allow(lossy-cast, ids stay within u32 by the check above)
            self.cold.push(TaskState::placeholder(TaskId(i as u32)));
        }
        self.present.grow(n);
        self.ran.grow(n);
        self.swt.resize(n, Rational::ZERO);
        self.next_release.resize(n, NEVER);
    }

    /// Checked cold-row access.
    pub(super) fn get(&self, id: TaskId) -> Option<&TaskState> {
        self.cold.get(id.idx())
    }

    /// Checked mutable cold-row access.
    pub(super) fn get_mut(&mut self, id: TaskId) -> Option<&mut TaskState> {
        self.cold.get_mut(id.idx())
    }

    /// Cold row of an admitted task — the slab's single panic-reach
    /// escape (see the module docs): every id the engine holds comes
    /// from an admitted event or a queue entry, both within the dense
    /// id range, so the lookup cannot fail in a correct engine.
    pub(super) fn task(&self, id: TaskId) -> &TaskState {
        // audit: allow(panic, admitted TaskIds are dense and in range for the whole run); allow(panic-reach, admitted TaskIds are dense and in range for the whole run)
        self.get(id).expect("task id outside the admitted range")
    }

    /// Mutable twin of [`TaskSlab::task`], under the same argument.
    pub(super) fn task_mut(&mut self, id: TaskId) -> &mut TaskState {
        // audit: allow(panic, admitted TaskIds are dense and in range for the whole run); allow(panic-reach, admitted TaskIds are dense and in range for the whole run)
        self.get_mut(id).expect("task id outside admitted range")
    }

    /// Hot column: is `id` in the system?
    pub(super) fn in_system(&self, id: TaskId) -> bool {
        self.present.get(id.idx())
    }

    /// Sets the presence bit.
    pub(super) fn set_in_system(&mut self, id: TaskId, value: bool) {
        self.present.set(id.idx(), value);
    }

    /// Hot column: did `id` run in the previous slot?
    pub(super) fn ran_last_slot(&self, id: TaskId) -> bool {
        self.ran.get(id.idx())
    }

    /// Sets the ran-last-slot bit.
    pub(super) fn set_ran(&mut self, id: TaskId, value: bool) {
        self.ran.set(id.idx(), value);
    }

    /// Hot column: scheduling weight of `id`.
    pub(super) fn swt(&self, id: TaskId) -> Rational {
        self.swt.get(id.idx()).copied().unwrap_or(Rational::ZERO)
    }

    /// Sets the scheduling weight.
    pub(super) fn set_swt(&mut self, id: TaskId, value: Rational) {
        if let Some(slot) = self.swt.get_mut(id.idx()) {
            *slot = value;
        }
    }

    /// Hot column: next scheduled release of `id`.
    pub(super) fn next_release(&self, id: TaskId) -> Option<Slot> {
        let raw = self.next_release.get(id.idx()).copied().unwrap_or(NEVER);
        (raw != NEVER).then_some(raw)
    }

    /// Sets (or suppresses, with `None`) the next release.
    pub(super) fn set_next_release(&mut self, id: TaskId, value: Option<Slot>) {
        if let Some(slot) = self.next_release.get_mut(id.idx()) {
            *slot = value.unwrap_or(NEVER);
        }
    }

    /// Ids of present tasks, ascending (a bitmap word scan).
    pub(super) fn present_ids(&self) -> Vec<TaskId> {
        self.present
            .iter_ones()
            // audit: allow(lossy-cast, bitmap ids originate from u32 TaskIds)
            .map(|i| TaskId(i as u32))
            .collect()
    }

    /// Number of present tasks.
    pub(super) fn present_count(&self) -> usize {
        self.present.count_ones()
    }

    /// Iterator over present ids, ascending, without allocating — the
    /// word-scan form of [`TaskSlab::present_ids`] for hot loops.
    pub(super) fn present_iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.present
            .iter_ones()
            // audit: allow(lossy-cast, bitmap ids originate from u32 TaskIds)
            .map(|i| TaskId(i as u32))
    }

    /// Ids whose ran-last-slot bit is set, ascending — the canonical
    /// rebuild source for the previous chosen set after a busy-span
    /// jump or a snapshot restore.
    pub(super) fn ran_ids(&self) -> Vec<TaskId> {
        self.ran
            .iter_ones()
            // audit: allow(lossy-cast, bitmap ids originate from u32 TaskIds)
            .map(|i| TaskId(i as u32))
            .collect()
    }

    /// Prunes every cold row (the history-mode oracle prune; event-
    /// driven runs prune only touched tasks instead).
    pub(super) fn prune_all(&mut self, record_history: bool) {
        for task in &mut self.cold {
            task.prune(record_history);
        }
    }

    /// Consumes the slab into its cold rows (end-of-run reporting).
    pub(super) fn into_cold(self) -> Vec<TaskState> {
        self.cold
    }
}
