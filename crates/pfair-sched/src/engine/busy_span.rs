//! Steady busy-span batching: closed-form advance over saturated spans.
//!
//! The tickless driver ([`Engine::run_tickless`]) already jumps *quiet*
//! spans — empty ready queue, no event due. Saturated systems never
//! have a quiet slot, yet between scheduling-relevant events their
//! trajectory is exactly periodic: every in-system task's subtask
//! windows recur with the period structure of Eqns (2)–(4) (a weight
//! `num/den` advances `num` subtask ranks every `den` slots, shifting
//! every window by `den`), so the whole engine state repeats up to a
//! uniform translation. This module exploits that:
//!
//! 1. **Arm** — when no enactment, departure, or stream event is due
//!    before a far boundary, snapshot the full scheduling state at
//!    `t0` and compute the candidate period `P` = lcm of the
//!    scheduling-weight denominators of every task releasing inside
//!    the span (capped; computed with the overflow-checked
//!    [`checked_lcm`]).
//! 2. **Verify** — keep stepping the per-slot oracle for exactly `P`
//!    slots. At `t1 = t0 + P`, check that the live state equals the
//!    snapshot translated by one period (`Φ`): every window, tracker,
//!    queue entry, calendar hint, and counter delta must match the
//!    closed-form image *bit for bit*, and each advancing task's rank
//!    delta must equal the analytic `(P / den) · num`. Any deviation
//!    aborts the attempt (with exponential backoff) and the run simply
//!    continues per-slot — batching is a pure optimization, never a
//!    semantic change.
//! 3. **Jump** — the engine is deterministic and, in the absence of
//!    events, its slot pipeline commutes with time translation, so
//!    `F^P(A) = Φ(A)` implies `F^(kP)(A) = Φ^k(A)`. The remaining
//!    `k = ⌊(end − t1) / P⌋` whole periods are enacted in one step by
//!    applying `Φ^k`: ranks advance `k · ΔI`, slots shift `k · P`,
//!    trackers translate via their `translated` constructors, counters
//!    accumulate `k` copies of the verified per-period delta.
//!
//! Batching engages whenever the attached probe declares
//! [`Probe::SPAN_AWARE`]: a span-aware probe reconstructs its whole
//! observation from span-level events — [`Probe::on_span_armed`] at the
//! snapshot slot and [`Probe::on_busy_span_jump`] carrying the verified
//! per-period [`SpanDigest`] — exactly (the verified period's hook
//! stream repeats `k` times shifted, so multiplying one period's
//! deltas by `k` is exact integer arithmetic, not sampling). Legacy
//! probes keep `SPAN_AWARE = false` and force the per-slot oracle, so
//! their hook streams stay bit-identical by construction. The
//! equivalence proptests assert the rendered results, counters,
//! metrics snapshots, and engine snapshots of batched and per-slot
//! runs are byte-identical.

use super::slab::TaskSlab;
use super::{Engine, SubRec, TaskState};
use crate::calendar::CalendarRing;
use crate::overhead::Counters;
use crate::priority::Priority;
use crate::queue::{QueueEntry, ReadyQueue};
use crate::reweight::RuleSelector;
use pfair_core::analysis::checked_lcm;
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_core::window::SubtaskWindow;
use pfair_obs::{Probe, SpanDigest, TaskSpanDelta};

/// Longest candidate period the batcher will verify. Spans with larger
/// hyperperiods fall back to per-slot stepping: the verification cost
/// (one full period of oracle slots plus a state diff) must stay small
/// against the jump it buys.
const MAX_SPAN_PERIOD: Slot = 4096;

/// Slots at or beyond this bound never batch. Well inside the packed-
/// priority exact band (`±2^46`, see [`crate::priority`]), so every
/// deadline/group-deadline field of a translated queue entry round-trips
/// through [`Priority::pack`] exactly.
const SLOT_SAFE_BOUND: Slot = 1 << 44;

/// Mismatch backoff cap: after `n` failed verifications the next
/// attempt waits `period << min(n, MAX_BACKOFF)` slots.
const MAX_BACKOFF: u32 = 4;

/// Cap on the processor-rotation probe extension, in base periods. The
/// sticky processor assignment ([`Engine::assign_processors`]) maps
/// each period's assignment vector to the next through a fixed
/// function, so in a steady schedule it settles into a cycle of some
/// length `q` base periods. `q` is *not* bounded by the order of a
/// processor permutation — the map acts on whole assignment vectors,
/// and cycles of length 6 arise already at `M = 4` — so rotation-only
/// verification failures keep the armed snapshot and extend the
/// verification slot one base period at a time until the multiple
/// covers the cycle. Cycles longer than this cap are abandoned to the
/// ordinary backoff.
const MAX_CPU_ROTATION: Slot = 8;

/// Busy-span batching state machine. Not persisted: a restored engine
/// re-arms from scratch, which cannot change its trajectory (jumps are
/// verified no-ops over per-slot stepping).
#[derive(Clone, Debug, Default)]
pub(super) struct BusySpanState {
    /// Armed snapshot awaiting its verification slot.
    probe: Option<SpanProbe>,
    /// Consecutive failed verifications (drives the backoff).
    fails: u32,
    /// Do not arm again before this slot.
    next_attempt: Slot,
}

/// Outcome of a verification attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SpanVerdict {
    /// Verified and jumped.
    Jumped,
    /// Everything scheduling-visible matched, but at least one task sat
    /// on a different processor: the sticky assignment is rotating with
    /// a longer cycle than the armed period.
    CpuRotation,
    /// The state is not (yet) periodic at the armed period.
    Mismatch,
}

/// Why [`task_delta`] rejected a task pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DeltaError {
    /// Only the processor placement differs.
    CpuRotation,
    /// A scheduling-visible field differs.
    Mismatch,
}

/// Everything [`Engine::busy_span_tick`] needs to recognize `Φ(A)` one
/// period later: the scheduling-relevant state at `t0`, with the
/// calendar rings projected to canonical `(slot, task)` lists (ring
/// *base* and per-slot insertion order are representation details —
/// consumers sort-and-dedup every due set — so equality is compared on
/// content, not encoding).
#[derive(Clone, Debug)]
struct SpanProbe {
    t0: Slot,
    /// Base span period (the lcm of the releasing denominators).
    base: Slot,
    /// Verified period: `base` at arm time, grown one `base` step per
    /// [`SpanVerdict::CpuRotation`] until it covers the sticky
    /// assignment's cycle.
    period: Slot,
    /// Jump ceiling fixed at arm time: `min(next_boundary, run limit)`.
    end: Slot,
    tasks: TaskSlab,
    queue: Vec<QueueEntry>,
    release_ring: Vec<(Slot, TaskId)>,
    enact_ring: Vec<(Slot, TaskId)>,
    leave_ring: Vec<(Slot, TaskId)>,
    counters: Counters,
    misses_len: usize,
    next_event: usize,
    selector: RuleSelector,
    committed: Vec<Rational>,
}

/// Verified per-period deltas of one task, used to extrapolate `Φ^k`.
#[derive(Clone, Copy, Debug)]
struct TaskDelta {
    /// Subtask ranks gained per period (`0` for a fixed task).
    d_index: u64,
    /// `scheduled_count` gained per period.
    sched: u64,
    /// `I_SW` allocation gained per period.
    isw_dt: Rational,
    /// `I_PS` allocation gained per period.
    ps_dt: Rational,
}

impl TaskDelta {
    /// Delta of a task the span does not move at all.
    fn fixed() -> TaskDelta {
        TaskDelta {
            d_index: 0,
            sched: 0,
            isw_dt: Rational::ZERO,
            ps_dt: Rational::ZERO,
        }
    }
}

impl<P: Probe> Engine<P> {
    /// One busy-span state-machine transition, called by the tickless
    /// driver after every full per-slot step. Either advances an armed
    /// probe toward its verification slot, verifies-and-jumps at that
    /// slot, or considers arming a fresh probe. O(1) when nothing is
    /// armed and arming is not due.
    pub(super) fn busy_span_tick(&mut self) {
        if !P::SPAN_AWARE || !self.config.busy_span {
            return;
        }
        if let Some(probe) = self.busy.probe.take() {
            let verify_at = probe.t0 + probe.period;
            if self.now < verify_at {
                self.busy.probe = Some(probe);
                return;
            }
            if self.now == verify_at {
                match self.verify_and_apply(&probe) {
                    SpanVerdict::Jumped => {
                        self.busy_span_jumps += 1;
                        self.busy.fails = 0;
                    }
                    SpanVerdict::CpuRotation => {
                        // Every scheduling-visible task field matched;
                        // only the sticky assignment rotates with a
                        // cycle the current multiple does not cover.
                        // Keep the same snapshot and push the
                        // verification slot out one base period — this
                        // discovers the cycle length `q` in `q` cheap
                        // comparisons, where re-arming would restart a
                        // fresh two-period wait per candidate.
                        let next = probe.period.saturating_add(probe.base);
                        if probe.period / probe.base.max(1) < MAX_CPU_ROTATION
                            && next <= MAX_SPAN_PERIOD
                            && probe.t0 + 2 * next <= probe.end
                        {
                            let mut p = probe;
                            p.period = next;
                            self.busy.probe = Some(p);
                        } else {
                            self.busy.fails = (self.busy.fails + 1).min(MAX_BACKOFF);
                            self.busy.next_attempt =
                                self.now.saturating_add(probe.base << self.busy.fails);
                        }
                    }
                    SpanVerdict::Mismatch => {
                        self.busy.fails = (self.busy.fails + 1).min(MAX_BACKOFF);
                        self.busy.next_attempt =
                            self.now.saturating_add(probe.period << self.busy.fails);
                    }
                }
                return;
            }
            // A quiet-span jump overshot the verification slot; the
            // snapshot no longer describes one-period-ago state. Drop
            // it and fall through to re-arming.
        }
        self.try_arm();
    }

    /// Number of verified busy-span jumps enacted so far (diagnostic;
    /// deliberately not a [`Counters`] field — the per-slot oracle
    /// never increments it, and counters must stay bit-identical).
    pub fn busy_span_jumps(&self) -> u64 {
        self.busy_span_jumps
    }

    /// Arms a probe when the span ahead looks periodic and is long
    /// enough to pay for its verification period.
    fn try_arm(&mut self) {
        let now = self.now;
        if now < self.busy.next_attempt || self.queue.is_empty() || !self.injected.is_empty() {
            return;
        }
        // Clamp to the current run segment: a jump must never carry
        // `now` past a `run_to` boundary.
        let end = self.next_boundary(now).min(self.run_limit);
        if end >= SLOT_SAFE_BOUND {
            return;
        }
        let Some(period) = self.span_period(end) else {
            return;
        };
        // One period is spent verifying; the jump must buy at least one
        // more whole period to be worth arming.
        if now + 2 * period > end {
            return;
        }
        self.busy.probe = Some(SpanProbe {
            t0: now,
            base: period,
            period,
            end,
            tasks: self.tasks.clone(),
            queue: self.queue.entries_sorted(),
            release_ring: ring_canonical(&self.release_at),
            enact_ring: ring_canonical(&self.enact_at),
            leave_ring: ring_canonical(&self.leave_at),
            counters: self.counters,
            misses_len: self.misses.len(),
            next_event: self.next_event,
            selector: self.selector.clone(),
            committed: self.admission.committed_parts().to_vec(),
        });
        self.probe.on_span_armed(now);
    }

    /// Candidate period: lcm of the scheduling-weight denominators of
    /// every in-system task releasing before `end`. Tasks with no
    /// release due in the span contribute nothing (they must stay
    /// entirely fixed, which verification enforces). `None` when no
    /// task releases, the lcm overflows, or it exceeds the cap.
    fn span_period(&self, end: Slot) -> Option<Slot> {
        let mut acc: i128 = 1;
        let mut any = false;
        // A pure hot-column scan: presence bitmap word-walk, then the
        // next_release and swt columns — the cold rows stay untouched.
        for id in self.tasks.present_iter() {
            if let Some(r) = self.tasks.next_release(id) {
                if r < end {
                    acc = checked_lcm(acc, self.tasks.swt(id).denom())?;
                    if acc > i128::from(MAX_SPAN_PERIOD) {
                        return None;
                    }
                    any = true;
                }
            }
        }
        if !any {
            return None;
        }
        Slot::try_from(acc).ok()
    }

    /// At `t1 = t0 + P`: checks that the live state is the snapshot's
    /// image under one period of translation, and if so applies the
    /// remaining whole periods in one step. Returns whether a jump was
    /// enacted; `false` leaves the engine exactly as the per-slot
    /// oracle left it.
    fn verify_and_apply(&mut self, probe: &SpanProbe) -> SpanVerdict {
        let period = probe.period;
        let t1 = probe.t0 + period;
        if self.now != t1
            || self.next_event != probe.next_event
            || !self.injected.is_empty()
            || self.misses.len() != probe.misses_len
            || self.tasks.len() != probe.tasks.len()
            || self.selector != probe.selector
            || self.admission.committed_parts() != probe.committed.as_slice()
        {
            return SpanVerdict::Mismatch;
        }
        // Per-task: classify as advancing (Φ shifts it) or fixed
        // (Φ is the identity on it), and harvest per-period deltas.
        // `task_delta` checks the processor placement last, so a
        // rotation verdict means every scheduling-visible task field
        // already matched — widening the span is worth trying.
        let mut rotating = false;
        let mut deltas: Vec<TaskDelta> = Vec::with_capacity(self.tasks.len());
        for i in 0..self.tasks.len() {
            // audit: allow(lossy-cast, slab ids stay within u32 by construction)
            let id = TaskId(i as u32);
            match task_delta(&probe.tasks, &self.tasks, id, period, probe.end) {
                Ok(d) => deltas.push(d),
                Err(DeltaError::CpuRotation) => {
                    rotating = true;
                    deltas.push(TaskDelta::fixed());
                }
                Err(DeltaError::Mismatch) => return SpanVerdict::Mismatch,
            }
        }
        if rotating {
            return SpanVerdict::CpuRotation;
        }
        // Ready queue: the live queue must be the snapshot queue with
        // every entry translated, and every entry must belong to an
        // advancing task — a fixed task with a live queue entry would
        // be schedulable inside the span, contradicting its stasis.
        let mut shifted: Vec<QueueEntry> = Vec::with_capacity(probe.queue.len());
        for e in &probe.queue {
            let Some(d) = deltas.get(e.task.idx()) else {
                return SpanVerdict::Mismatch;
            };
            if d.d_index == 0 {
                return SpanVerdict::Mismatch;
            }
            let (Some(priority), Some(index)) = (
                translate_priority(e.priority, period),
                e.index.checked_add(d.d_index),
            ) else {
                return SpanVerdict::Mismatch;
            };
            shifted.push(QueueEntry {
                priority,
                task: e.task,
                index,
            });
        }
        shifted.sort_unstable();
        if shifted != self.queue.entries_sorted() {
            return SpanVerdict::Mismatch;
        }
        // Calendar rings. Enactment/departure hints cannot move inside
        // the span (an advancing task has no pending or leave, and the
        // span boundary precedes every such hint), so Φ is the identity
        // on those rings. Release hints shift with their owner.
        if ring_canonical(&self.enact_at) != probe.enact_ring
            || ring_canonical(&self.leave_at) != probe.leave_ring
        {
            return SpanVerdict::Mismatch;
        }
        let Some(release_shifted) = shift_release_ring(&probe.release_ring, &deltas, period) else {
            return SpanVerdict::Mismatch;
        };
        if release_shifted != ring_canonical(&self.release_at) {
            return SpanVerdict::Mismatch;
        }
        // Counter deltas must be non-negative, and event-driven
        // counters cannot move in an event-free span.
        let Some(delta) = counters_sub(&self.counters, &probe.counters) else {
            return SpanVerdict::Mismatch;
        };
        if delta.reweight_initiations != 0
            || delta.reweight_enactments != 0
            || delta.halts != 0
            || delta.rejected_heavy_reweights != 0
        {
            return SpanVerdict::Mismatch;
        }
        // Re-derive the ceiling defensively (verification above already
        // implies it has not moved) and jump whole periods only. The
        // run-segment limit subsumes the horizon clamp (`run_to` never
        // sets it above the horizon).
        let end = probe.end.min(self.next_boundary(t1)).min(self.run_limit);
        let k = (end - t1) / period; // audit: allow(panic-reach, span_period returns a positive lcm, so the armed period is >= 1)
        if k < 1 {
            return SpanVerdict::Mismatch;
        }
        if self.apply_jump(k, period, &deltas, &delta) {
            // Tell the probe the jump happened. The digest is the exact
            // per-period aggregate just verified bit-for-bit; skip its
            // construction under the no-op probe (which discards it).
            if !P::IS_NOOP {
                let digest = span_digest(period, &deltas, &delta);
                self.probe
                    .on_busy_span_jump(probe.t0, t1, u64::try_from(k).unwrap_or(0), &digest);
            }
            SpanVerdict::Jumped
        } else {
            SpanVerdict::Mismatch
        }
    }

    /// Applies `Φ^k`. Build-then-commit: every piece of post-jump state
    /// is constructed first, so a failed (overflowing) translation
    /// leaves the engine untouched and the run continues per-slot.
    fn apply_jump(
        &mut self,
        k: Slot,
        period: Slot,
        deltas: &[TaskDelta],
        delta: &Counters,
    ) -> bool {
        let Some((tasks, queue, release_at, counters, now)) =
            self.build_jump(k, period, deltas, delta)
        else {
            return false;
        };
        self.tasks = tasks;
        self.queue = queue;
        self.release_at = release_at;
        self.counters = counters;
        self.now = now;
        // Last slot's chosen set survives Φ as the `ran` bitmap (only
        // membership is ever read — `sweep_ran_flags` treats it as a
        // set and reports preemptions in ascending id order anyway).
        self.last_chosen = self.tasks.ran_ids();
        // Miss-watch entries name pre-jump deadlines; every pending
        // subtask window just translated by k·P, so rebuild the watch
        // from the committed slab.
        self.rebuild_miss_watch();
        true
    }

    /// Constructs the `Φ^k` image of the whole engine state: tasks and
    /// queue entries translated by `k` periods, the release ring
    /// rebuilt at the jump target, counters grown by `k` verified
    /// per-period deltas. `None` on any arithmetic overflow.
    #[allow(clippy::type_complexity)]
    fn build_jump(
        &self,
        k: Slot,
        period: Slot,
        deltas: &[TaskDelta],
        delta: &Counters,
    ) -> Option<(TaskSlab, ReadyQueue, CalendarRing, Counters, Slot)> {
        let ki = u64::try_from(k).ok()?;
        let ds = period.checked_mul(k)?;
        let now = self.now.checked_add(ds)?;
        // Fixed tasks keep their rows and columns verbatim (Φ is the
        // identity on them), so start from a clone of the whole slab
        // and overwrite only the advancing tasks: cold row via
        // `translate_task`, next-release column shifted by k·P. The
        // present/ran/swt columns are translation-invariant.
        let mut tasks = self.tasks.clone();
        for (i, d) in deltas.iter().enumerate() {
            if d.d_index == 0 {
                continue;
            }
            // audit: allow(lossy-cast, slab ids stay within u32 by construction)
            let id = TaskId(i as u32);
            *tasks.get_mut(id)? = translate_task(self.tasks.get(id)?, ds, k, ki, d)?;
            // Advancing tasks always carry a release (task_delta
            // requires one), so a missing column value bails the jump.
            let r = self.tasks.next_release(id)?;
            tasks.set_next_release(id, Some(r.checked_add(ds)?));
        }
        let mut entries = self.queue.entries_sorted();
        for e in &mut entries {
            let d = deltas.get(e.task.idx())?;
            e.priority = translate_priority(e.priority, ds)?;
            e.index = e.index.checked_add(d.d_index.checked_mul(ki)?)?;
        }
        entries.sort_unstable();
        let queue = ReadyQueue::from_entries(entries);
        // Rebuild the release ring at the jump target: hints owned by
        // advancing tasks shift with them; hints owned by fixed tasks
        // keep their slot while still ahead of the target and are
        // dropped when the jump passes them — such a hint is
        // necessarily stale (a fixed task releasing inside the span
        // fails verification), and firing a stale hint is a no-op: the
        // release path validates every hint against the task's current
        // `next_release` and skips mismatches without touching state.
        // The enactment/departure rings carry no entry below the span
        // boundary (it is their minimum by construction), so they need
        // no rebuild: their bases stay behind, which only means their
        // windows rotate a little later.
        let mut release_at = CalendarRing::new(now);
        let (_, buckets, overflow) = self.release_at.persist_parts();
        for (slot, ids) in buckets {
            for id in ids {
                insert_release(&mut release_at, slot, id, deltas, ds, now)?;
            }
        }
        for (slot, id) in overflow {
            insert_release(&mut release_at, slot, id, deltas, ds, now)?;
        }
        let counters = counters_scaled_add(&self.counters, delta, ki)?;
        Some((tasks, queue, release_at, counters, now))
    }
}

/// Decides how one task moved over the verified period: `Ok(fixed)` if
/// Φ is the identity on it, `Ok(advancing)` if every field is the
/// one-period translation of the snapshot *and* the rank advance
/// matches the analytic `(P / den) · num`. The processor placement is
/// checked last, so [`DeltaError::CpuRotation`] certifies that every
/// scheduling-visible field already matched and only the sticky
/// assignment's cycle outruns the period.
fn task_delta(
    a: &TaskSlab,
    b: &TaskSlab,
    id: TaskId,
    period: Slot,
    end: Slot,
) -> Result<TaskDelta, DeltaError> {
    let fail = DeltaError::Mismatch;
    if a.in_system(id) != b.in_system(id) {
        return Err(fail);
    }
    if !b.in_system(id) {
        // Departed or not-yet-joined tasks must be entirely untouched.
        return task_fixed_equal(a, b, id)
            .then(TaskDelta::fixed)
            .ok_or(fail);
    }
    let (ta, tb) = (a.get(id).ok_or(fail)?, b.get(id).ok_or(fail)?);
    let d_index = tb.next_index.checked_sub(ta.next_index).ok_or(fail)?;
    if d_index == 0 {
        if !task_fixed_equal(a, b, id) {
            return Err(fail);
        }
        // A task fixed over one period must stay fixed over the whole
        // extrapolated span: no release scheduled before its end.
        return match a.next_release(id) {
            Some(r) if r < end => Err(fail),
            _ => Ok(TaskDelta::fixed()),
        };
    }
    // Advancing task: reweighting state must be quiescent and
    // era-stable (drift samples only appear at era boundaries, so
    // equality of the tracks is implied but checked anyway).
    if ta.pending.is_some() || tb.pending.is_some() || ta.leaving.is_some() || tb.leaving.is_some()
    {
        return Err(fail);
    }
    if ta.era_base != tb.era_base || ta.era_open_pending || tb.era_open_pending {
        return Err(fail);
    }
    if ta.wt != tb.wt || a.swt(id) != b.swt(id) || ta.drift != tb.drift {
        return Err(fail);
    }
    if a.ran_last_slot(id) != b.ran_last_slot(id) {
        return Err(fail);
    }
    // Analytic periodicity (Eqns (2)–(4)): weight `num/den` advances
    // exactly `num` ranks per `den` slots, and every window shifts by
    // `den`. The period must be a whole multiple of `den` and the
    // observed rank delta must match — this pins the extrapolation to
    // the closed-form window math, not just to one lucky period.
    let swt = a.swt(id);
    let den = swt.denom();
    let num = swt.numer();
    if den <= 0 || num <= 0 {
        return Err(fail);
    }
    let rank_gain = i128::from(period) / den; // audit: allow(panic-reach, den is checked positive just above)
    if i128::from(period) % den != 0
        || i128::from(d_index) != rank_gain.checked_mul(num).ok_or(fail)?
    {
        return Err(fail);
    }
    match (a.next_release(id), b.next_release(id)) {
        (Some(ra), Some(rb)) if ra.checked_add(period) == Some(rb) => {}
        _ => return Err(fail),
    }
    match (ta.last_scheduled, tb.last_scheduled) {
        (None, None) => {}
        (Some(wa), Some(wb)) if shift_window(wa, period) == Some(wb) => {}
        _ => return Err(fail),
    }
    if ta.subs.len() != tb.subs.len() {
        return Err(fail);
    }
    for (sa, sb) in ta.subs.iter().zip(tb.subs.iter()) {
        if shift_sub(sa, period, d_index) != Some(*sb) {
            return Err(fail);
        }
    }
    let isw_dt = tb.isw.isw_total() - ta.isw.isw_total();
    if ta.isw.translated(period, d_index, isw_dt).ok_or(fail)? != tb.isw {
        return Err(fail);
    }
    let ps_dt = tb.ps.total() - ta.ps.total();
    if ta.ps.translated(period, ps_dt).ok_or(fail)? != tb.ps {
        return Err(fail);
    }
    let sched = tb
        .scheduled_count
        .checked_sub(ta.scheduled_count)
        .ok_or(fail)?;
    // Everything scheduling-visible matches; the placement check comes
    // last so its failure is unambiguous.
    if ta.last_cpu != tb.last_cpu {
        return Err(DeltaError::CpuRotation);
    }
    Ok(TaskDelta {
        d_index,
        sched,
        isw_dt,
        ps_dt,
    })
}

/// Field-by-field equality for a task Φ must not move: all four hot
/// columns plus the cold row. The window memo (`win_cache`) is excluded
/// — it is a pure per-era cache whose fill level depends on query
/// history, carries no semantics, and is not part of the persisted
/// encoding either. History accumulators are excluded too: busy spans
/// only run with history recording off, so they are empty on both
/// sides.
fn task_fixed_equal(a: &TaskSlab, b: &TaskSlab, id: TaskId) -> bool {
    let (Some(ta), Some(tb)) = (a.get(id), b.get(id)) else {
        return false;
    };
    a.in_system(id) == b.in_system(id)
        && a.swt(id) == b.swt(id)
        && a.next_release(id) == b.next_release(id)
        && a.ran_last_slot(id) == b.ran_last_slot(id)
        && ta.id == tb.id
        && ta.wt == tb.wt
        && ta.era_base == tb.era_base
        && ta.next_index == tb.next_index
        && ta.era_open_pending == tb.era_open_pending
        && ta.subs == tb.subs
        && ta.pending == tb.pending
        && ta.leaving == tb.leaving
        && ta.last_scheduled == tb.last_scheduled
        && ta.isw == tb.isw
        && ta.ps == tb.ps
        && ta.drift == tb.drift
        && ta.scheduled_count == tb.scheduled_count
        && ta.last_cpu == tb.last_cpu
}

/// The Φ-image of an advancing task's cold row under `k` periods
/// (`ds = k · P`, rank advance `ki · ΔI`). The hot next-release column
/// is shifted separately by [`Engine::build_jump`].
fn translate_task(
    task: &TaskState,
    ds: Slot,
    k: Slot,
    ki: u64,
    d: &TaskDelta,
) -> Option<TaskState> {
    let di = d.d_index.checked_mul(ki)?;
    let mut t = task.clone();
    t.next_index = task.next_index.checked_add(di)?;
    t.scheduled_count = task.scheduled_count.checked_add(d.sched.checked_mul(ki)?)?;
    t.last_scheduled = match task.last_scheduled {
        None => None,
        Some(w) => Some(shift_window(w, ds)?),
    };
    for s in &mut t.subs {
        *s = shift_sub(s, ds, di)?;
    }
    t.isw = task.isw.translated(ds, di, d.isw_dt.mul_int(k))?;
    t.ps = task.ps.translated(ds, d.ps_dt.mul_int(k))?;
    Some(t)
}

/// A subtask record translated by `ds` slots and `di` ranks.
fn shift_sub(s: &SubRec, ds: Slot, di: u64) -> Option<SubRec> {
    Some(SubRec {
        index: s.index.checked_add(di)?,
        window: shift_window(s.window, ds)?,
        group_deadline: s.group_deadline.checked_add(ds)?,
        era_first: s.era_first,
        scheduled_at: shift_opt(s.scheduled_at, ds)?,
        halted_at: shift_opt(s.halted_at, ds)?,
        isw_completion: shift_opt(s.isw_completion, ds)?,
        missed: s.missed,
    })
}

fn shift_window(w: SubtaskWindow, ds: Slot) -> Option<SubtaskWindow> {
    Some(SubtaskWindow {
        release: w.release.checked_add(ds)?,
        deadline: w.deadline.checked_add(ds)?,
        b: w.b,
    })
}

fn shift_opt(s: Option<Slot>, ds: Slot) -> Option<Option<Slot>> {
    match s {
        None => Some(None),
        Some(x) => Some(Some(x.checked_add(ds)?)),
    }
}

/// A packed priority translated by `ds` slots: both deadline fields
/// shift, the b-bit and tie rank are translation-invariant. Exact
/// because batching is confined to slots below [`SLOT_SAFE_BOUND`],
/// well inside the pack's exact band; the guard re-checks anyway.
fn translate_priority(p: Priority, ds: Slot) -> Option<Priority> {
    let deadline = p.deadline().checked_add(ds)?;
    let gd = p.group_deadline().checked_add(ds)?;
    if deadline >= 2 * SLOT_SAFE_BOUND || gd >= 2 * SLOT_SAFE_BOUND {
        return None;
    }
    Some(Priority::pack(deadline, p.b(), gd, p.tie_rank()))
}

/// A calendar ring projected to its canonical content: `(slot, task)`
/// pairs sorted by slot then id. Ring base and per-slot insertion
/// order are representation details — every consumer sorts and dedups
/// the due set before acting on it.
fn ring_canonical(ring: &CalendarRing) -> Vec<(Slot, TaskId)> {
    let (_, buckets, overflow) = ring.persist_parts();
    let mut out: Vec<(Slot, TaskId)> = buckets
        .into_iter()
        .flat_map(|(s, ids)| ids.into_iter().map(move |id| (s, id)))
        .collect();
    out.extend(overflow);
    out.sort_unstable_by_key(|&(s, id)| (s, id.0));
    out
}

/// Φ on the release ring's canonical content: hints owned by advancing
/// tasks shift one period, hints owned by fixed tasks stay. A hint
/// consumed inside the verified period therefore shows up as a
/// mismatch (its image is absent from the live ring) unless the
/// steady state re-created its successor exactly one period later —
/// which is precisely the condition under which extrapolation is
/// sound.
fn shift_release_ring(
    ring: &[(Slot, TaskId)],
    deltas: &[TaskDelta],
    ds: Slot,
) -> Option<Vec<(Slot, TaskId)>> {
    let mut out = Vec::with_capacity(ring.len());
    for &(slot, id) in ring {
        let d = deltas.get(id.idx())?;
        let slot = if d.d_index > 0 {
            slot.checked_add(ds)?
        } else {
            slot
        };
        out.push((slot, id));
    }
    out.sort_unstable_by_key(|&(s, id)| (s, id.0));
    Some(out)
}

/// Inserts one release hint into the rebuilt ring (see
/// [`Engine::build_jump`] for the shift/keep/drop policy).
fn insert_release(
    ring: &mut CalendarRing,
    slot: Slot,
    id: TaskId,
    deltas: &[TaskDelta],
    ds: Slot,
    now: Slot,
) -> Option<()> {
    let d = deltas.get(id.idx())?;
    if d.d_index > 0 {
        ring.insert(slot.checked_add(ds)?, id);
    } else if slot >= now {
        ring.insert(slot, id);
    }
    Some(())
}

/// The exact per-period aggregate handed to [`Probe::on_busy_span_jump`]:
/// the verified counter delta plus each moving task's per-period rank
/// (= release) and schedule gains. Everything here was checked bit-for-
/// bit by [`Engine::verify_and_apply`] before the digest is built, so a
/// span-aware probe may multiply any field by the jump count and stay
/// exact.
fn span_digest(period: Slot, deltas: &[TaskDelta], delta: &Counters) -> SpanDigest {
    let per_task: Vec<TaskSpanDelta> = deltas
        .iter()
        .enumerate()
        .filter(|(_, d)| d.d_index > 0 || d.sched > 0)
        .map(|(i, d)| TaskSpanDelta {
            // audit: allow(lossy-cast, slab ids stay within u32 by construction)
            task: TaskId(i as u32),
            releases: d.d_index,
            schedules: d.sched,
        })
        .collect();
    SpanDigest {
        period,
        queue_pushes: delta.heap_pushes,
        queue_pops: delta.heap_pops,
        stale_pops: delta.stale_pops,
        stale_drops: delta.compacted_stale,
        preemptions: delta.preemptions,
        halts: delta.halts,
        scheduled_quanta: delta.scheduled_quanta,
        holes: delta.slots_with_holes,
        migrations: delta.migrations,
        per_task,
    }
}

/// Per-field `b − a`; `None` if any counter went backwards (it cannot —
/// counters are monotone — but the batcher bails rather than trusts).
fn counters_sub(b: &Counters, a: &Counters) -> Option<Counters> {
    Some(Counters {
        heap_pushes: b.heap_pushes.checked_sub(a.heap_pushes)?,
        heap_pops: b.heap_pops.checked_sub(a.heap_pops)?,
        stale_pops: b.stale_pops.checked_sub(a.stale_pops)?,
        reweight_initiations: b.reweight_initiations.checked_sub(a.reweight_initiations)?,
        reweight_enactments: b.reweight_enactments.checked_sub(a.reweight_enactments)?,
        halts: b.halts.checked_sub(a.halts)?,
        scheduled_quanta: b.scheduled_quanta.checked_sub(a.scheduled_quanta)?,
        slots_with_holes: b.slots_with_holes.checked_sub(a.slots_with_holes)?,
        migrations: b.migrations.checked_sub(a.migrations)?,
        preemptions: b.preemptions.checked_sub(a.preemptions)?,
        rejected_heavy_reweights: b
            .rejected_heavy_reweights
            .checked_sub(a.rejected_heavy_reweights)?,
        compactions: b.compactions.checked_sub(a.compactions)?,
        compacted_stale: b.compacted_stale.checked_sub(a.compacted_stale)?,
    })
}

/// Per-field `base + k · delta`, overflow-checked.
fn counters_scaled_add(base: &Counters, delta: &Counters, k: u64) -> Option<Counters> {
    fn acc(b: u64, d: u64, k: u64) -> Option<u64> {
        b.checked_add(d.checked_mul(k)?)
    }
    Some(Counters {
        heap_pushes: acc(base.heap_pushes, delta.heap_pushes, k)?,
        heap_pops: acc(base.heap_pops, delta.heap_pops, k)?,
        stale_pops: acc(base.stale_pops, delta.stale_pops, k)?,
        reweight_initiations: acc(base.reweight_initiations, delta.reweight_initiations, k)?,
        reweight_enactments: acc(base.reweight_enactments, delta.reweight_enactments, k)?,
        halts: acc(base.halts, delta.halts, k)?,
        scheduled_quanta: acc(base.scheduled_quanta, delta.scheduled_quanta, k)?,
        slots_with_holes: acc(base.slots_with_holes, delta.slots_with_holes, k)?,
        migrations: acc(base.migrations, delta.migrations, k)?,
        preemptions: acc(base.preemptions, delta.preemptions, k)?,
        rejected_heavy_reweights: acc(
            base.rejected_heavy_reweights,
            delta.rejected_heavy_reweights,
            k,
        )?,
        compactions: acc(base.compactions, delta.compactions, k)?,
        compacted_stale: acc(base.compacted_stale, delta.compacted_stale, k)?,
    })
}
