//! EPDF with `I_PS`-projected deadlines: the Theorem-4 lower-bound
//! scheduler.
//!
//! Theorem 4 shows *every* EPDF algorithm can incur non-zero drift per
//! reweighting event. The argument (Fig. 9) considers an EPDF scheduler
//! that, lacking prior knowledge of weight changes, must derive subtask
//! deadlines from *projections* of the instantaneous ideal `I_PS`: the
//! deadline of a task's `(k+1)`-th quantum is the projected time at
//! which its `I_PS` allocation reaches `k + 1` under the current weight.
//! When a weight increases, the projection jumps earlier — too late for
//! the scheduler to have built up the allocation, and a deadline is
//! missed unless the scheme accepts drift by shifting its lag-bound
//! range.
//!
//! This module implements exactly that scheduler so the counterexample
//! is *executable*: the `fig9` test and the `counterexamples` binary run
//! the paper's two-processor system and observe the miss at time 9.

use crate::event::{Event, EventKind, Workload};
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::{slot_from_i128, Slot};

/// A deadline miss under the projected-deadline EPDF scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProjectedMiss {
    /// The task that missed.
    pub task: TaskId,
    /// Which quantum (1-based) missed.
    pub quantum: u64,
    /// The projected deadline that passed unmet.
    pub deadline: Slot,
}

#[derive(Clone, Debug)]
struct PTask {
    active: bool,
    wt: Rational,
    /// `A(I_PS, T, 0, now)`.
    cum: Rational,
    /// Completed quanta.
    done: u64,
    /// Quanta already reported as missed (to report each miss once).
    missed_through: u64,
}

/// Result of a projected-deadline EPDF run.
#[derive(Clone, Debug)]
pub struct ProjectedRun {
    /// All misses in time order.
    pub misses: Vec<ProjectedMiss>,
    /// Quanta scheduled per task.
    pub scheduled: Vec<u64>,
}

/// The projected deadline of task state `p` at time `now`: the earliest
/// integer time at which its `I_PS` allocation reaches `done + 1`.
fn projected_deadline(p: &PTask, now: Slot) -> Slot {
    let need = Rational::from_int(i128::from(p.done) + 1) - p.cum;
    if !need.is_positive() {
        return now; // allocation already owed
    }
    // now + ⌈need / wt⌉
    now + slot_from_i128((need / p.wt).ceil())
}

/// Whether the `(done+1)`-th quantum has been *released*: the ideal has
/// fully allocated the first `done` quanta (`cum ≥ done`), so the next
/// one is underway. Matches the window structure of Fig. 9 (a weight-1/7
/// task's second quantum releases at time 7).
fn released(p: &PTask) -> bool {
    p.cum >= Rational::from_int(i128::from(p.done))
}

/// Runs the projected-deadline EPDF scheduler over the workload on
/// `processors` processors for `horizon` slots.
pub fn run_projected_epdf(processors: u32, horizon: Slot, workload: &Workload) -> ProjectedRun {
    // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
    let n = workload.task_count() as usize;
    let mut tasks: Vec<PTask> = (0..n)
        .map(|_| PTask {
            active: false,
            wt: Rational::ONE,
            cum: Rational::ZERO,
            done: 0,
            missed_through: 0,
        })
        .collect();
    let events: Vec<Event> = workload.sorted_events();
    let mut next_event = 0usize;
    let mut misses = Vec::new();
    let mut scheduled = vec![0u64; n];

    for t in 0..horizon {
        // Apply events at t.
        while next_event < events.len() && events[next_event].at == t {
            let ev = events[next_event];
            next_event += 1;
            let p = &mut tasks[ev.task.idx()];
            match ev.kind {
                EventKind::Join(w) => {
                    p.active = true;
                    p.wt = w.value();
                    p.cum = Rational::ZERO;
                    p.done = 0;
                    p.missed_through = 0;
                }
                EventKind::Leave => p.active = false,
                EventKind::Reweight(w) => p.wt = w.value(),
                // Separations have no effect on the projection scheme:
                // its releases derive from the I_PS accumulation itself.
                EventKind::Delay(_) => {}
            }
        }

        // Record misses: released quanta whose projected deadline is ≤ t.
        for (i, p) in tasks.iter_mut().enumerate() {
            if p.active && released(p) && p.done >= p.missed_through {
                let dl = projected_deadline(p, t);
                if dl <= t {
                    misses.push(ProjectedMiss {
                        task: TaskId::from_index(i),
                        quantum: p.done + 1,
                        deadline: dl,
                    });
                    p.missed_through = p.done + 1;
                }
            }
        }

        // EPDF selection among released quanta.
        let mut eligible: Vec<(Slot, usize)> = tasks
            .iter()
            .enumerate()
            .filter(|(_, p)| p.active && released(p))
            .map(|(i, p)| (projected_deadline(p, t), i))
            .collect();
        eligible.sort();
        // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
        for &(_, i) in eligible.iter().take(processors as usize) {
            tasks[i].done += 1;
            scheduled[i] += 1;
        }

        // Ideal advance.
        for p in tasks.iter_mut().filter(|p| p.active) {
            p.cum += p.wt;
        }
    }

    ProjectedRun { misses, scheduled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    #[test]
    fn projection_matches_fig9_deadline_jump() {
        // Weight 1/21 at time 0: first quantum projected at 21.
        let mut p = PTask {
            active: true,
            wt: rat(1, 21),
            cum: Rational::ZERO,
            done: 0,
            missed_through: 0,
        };
        assert_eq!(projected_deadline(&p, 0), 21);
        // At time 7 with cum = 7/21 and weight now 1/3: projection is 9.
        p.cum = rat(7, 21);
        p.wt = rat(1, 3);
        assert_eq!(projected_deadline(&p, 7), 9);
    }

    #[test]
    fn second_quantum_releases_when_ideal_catches_up() {
        // Weight-1/7 task: second quantum releases at time 7.
        let mut p = PTask {
            active: true,
            wt: rat(1, 7),
            cum: Rational::ZERO,
            done: 0,
            missed_through: 0,
        };
        assert!(released(&p)); // first quantum released immediately
        p.done = 1;
        p.cum = rat(6, 7);
        assert!(!released(&p));
        p.cum = Rational::ONE;
        assert!(released(&p));
    }

    #[test]
    fn single_task_never_misses() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 3);
        let run = run_projected_epdf(1, 30, &w);
        assert!(run.misses.is_empty());
        assert_eq!(run.scheduled[0], 10);
    }
}
