//! ASCII rendering of subtask windows and schedules.
//!
//! The paper communicates its examples as window diagrams (Figs. 1, 3,
//! 4, 6–9). This module renders the same diagrams from simulation
//! traces, which the figure-validation tests and the
//! `pfair-experiments` binaries use to make runs inspectable:
//!
//! ```text
//! T0   [== X =====)          subtask 1, scheduled in slot 2
//! T0        [=== X ==)       subtask 2, scheduled in slot 6
//! ```
//!
//! Legend: `[` release, `)` one past the deadline, `X` the slot PD²
//! scheduled the subtask in, `#` a halted subtask's halt slot.

use crate::trace::{SubtaskRecord, TaskHistory};
use pfair_core::time::Slot;

/// Renders one subtask's window on a `[0, horizon)` ruler.
pub fn render_window(rec: &SubtaskRecord, horizon: Slot) -> String {
    let mut row = vec![b' '; horizon.max(0) as usize];
    let lo = rec.window.release.clamp(0, horizon);
    let hi = rec.window.deadline.clamp(0, horizon);
    for t in lo..hi {
        row[t as usize] = b'=';
    }
    if rec.window.release >= 0 && rec.window.release < horizon {
        row[rec.window.release as usize] = b'[';
    }
    if hi > lo && hi <= horizon && rec.window.deadline <= horizon {
        row[(rec.window.deadline - 1) as usize] = b')';
    }
    if let Some(s) = rec.scheduled_at {
        if s >= 0 && s < horizon {
            row[s as usize] = b'X';
        }
    }
    if let Some(h) = rec.halted_at {
        if h >= 0 && h < horizon {
            row[h as usize] = b'#';
        }
    }
    String::from_utf8(row).expect("ASCII only")
}

/// Renders a task's full subtask history, one line per subtask.
pub fn render_task(label: &str, history: &TaskHistory, horizon: Slot) -> String {
    let mut out = String::new();
    for rec in &history.subtasks {
        out.push_str(&format!(
            "{:<6} {} (T_{}{})\n",
            label,
            render_window(rec, horizon),
            rec.index,
            if rec.era_first { ", era" } else { "" }
        ));
    }
    out
}

/// A slot ruler to print above rendered rows (tens digits, then units).
pub fn ruler(horizon: Slot) -> String {
    let n = horizon.max(0) as usize;
    let units: String = (0..n).map(|t| char::from(b'0' + (t % 10) as u8)).collect();
    let tens: String = (0..n)
        .map(|t| {
            if t % 10 == 0 && t >= 10 {
                char::from(b'0' + ((t / 10) % 10) as u8)
            } else {
                ' '
            }
        })
        .collect();
    format!("       {tens}\n       {units}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::window::SubtaskWindow;

    fn rec(
        release: Slot,
        deadline: Slot,
        scheduled: Option<Slot>,
        halted: Option<Slot>,
    ) -> SubtaskRecord {
        SubtaskRecord {
            index: 1,
            window: SubtaskWindow {
                release,
                deadline,
                b: true,
            },
            scheduled_at: scheduled,
            halted_at: halted,
            isw_completion: None,
            era_first: true,
        }
    }

    #[test]
    fn window_with_schedule_mark() {
        let s = render_window(&rec(2, 6, Some(4), None), 8);
        assert_eq!(s, "  [=X)  ");
    }

    #[test]
    fn halted_subtask_mark() {
        let s = render_window(&rec(0, 5, None, Some(3)), 6);
        assert_eq!(s, "[==#) ");
    }

    #[test]
    fn clamps_to_horizon() {
        let s = render_window(&rec(4, 12, None, None), 8);
        assert_eq!(s, "    [===");
    }

    #[test]
    fn ruler_lines_up() {
        let r = ruler(12);
        assert!(r.contains("012345678901"));
    }
}
