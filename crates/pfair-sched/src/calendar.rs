//! A bucketed calendar queue for slot-indexed engine events.
//!
//! The engine keeps three slot → task-list indexes (releases, parked
//! enactments, rule-L departures). They were `BTreeMap<Slot, Vec<_>>`:
//! `O(log n)` per insert and per-slot probe, with the per-slot probe
//! paid on *every* slot whether or not anything is due. A calendar
//! queue exploits the access pattern instead — keys are drawn from a
//! narrow moving window just ahead of `now`, and the consumer visits
//! slots in nondecreasing order:
//!
//! - [`CalendarRing::insert`] is `O(1)` amortized: a push onto the
//!   bucket `slot mod WINDOW` (or onto a small overflow list for the
//!   rare far-future key — long delays, distant rule-L departures).
//! - [`CalendarRing::take`] is `O(1)` plus the entries returned: one
//!   occupancy-bitmap test rejects empty slots without touching the
//!   bucket array.
//! - [`CalendarRing::next_occupied`] — the query the tickless batching
//!   layer plans spans with — scans the occupancy bitmap a word (64
//!   slots) at a time: `O(1)` when the ring is empty (the common case
//!   in a quiet span), `O(WINDOW/64)` worst case.
//!
//! The window advances lazily: when `take(t)` is called past the
//! current window, every bucketed entry is already consumed (per-slot
//! mode visits every slot; tickless mode never skips a slot any ring
//! reports occupied), so rotation just rebases the window and migrates
//! newly-in-range overflow entries into buckets.
//!
//! Entries are *hints*, exactly as the BTreeMap entries were: the
//! engine re-validates each against current task state when its slot
//! fires, so stale entries (superseded pendings, moved releases) cost
//! one skipped id, never a wrong action. A stale entry can also make
//! `next_occupied` conservative (an earlier boundary than necessary) —
//! batching then splits a span, which is slower but never wrong.

use pfair_core::task::TaskId;
use pfair_core::time::{Slot, NEVER};

/// Bucketed window span in slots. Must be a power of two (the bucket
/// map is `slot mod WINDOW_SLOTS`). 512 covers every release/enactment
/// horizon the reweighting rules produce for the weights in this repo's
/// experiments; larger gaps (long IS delays) ride the overflow list.
const WINDOW_SLOTS: Slot = 512;
/// The same span as a bucket count.
const WINDOW: usize = 512;
/// Occupancy bitmap words (64 buckets per word).
const WORDS: usize = WINDOW / 64;

/// Occupied in-window buckets, projected as `(absolute slot, entries)`
/// pairs — the slot-recoverable half of a persisted ring.
pub type RingBuckets = Vec<(Slot, Vec<TaskId>)>;
/// Far-future entries beyond the window, as `(due slot, task)` pairs.
pub type RingOverflow = Vec<(Slot, TaskId)>;

/// A slot-indexed multimap over a moving window of time.
#[derive(Clone, Debug)]
pub struct CalendarRing {
    /// First slot of the current window; `take` keeps `base ≤ t`.
    base: Slot,
    /// One bucket per window slot, indexed `slot mod WINDOW_SLOTS`.
    buckets: Vec<Vec<TaskId>>,
    /// Bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Entries beyond the window, migrated into buckets at rotation.
    overflow: Vec<(Slot, TaskId)>,
    /// Exact minimum slot in `overflow` (`NEVER` when it is empty).
    overflow_min: Slot,
    /// Live entry count across the buckets.
    in_window: usize,
}

impl CalendarRing {
    /// An empty ring whose window starts at `start`.
    pub fn new(start: Slot) -> CalendarRing {
        CalendarRing {
            base: start,
            buckets: vec![Vec::new(); WINDOW],
            occupied: [0; WORDS],
            overflow: Vec::new(),
            overflow_min: NEVER,
            in_window: 0,
        }
    }

    // audit: prove(overflow-bounds)
    fn bucket_of(slot: Slot) -> usize {
        usize::try_from(slot.rem_euclid(WINDOW_SLOTS)).unwrap_or(0)
    }

    /// Registers `id` at slot `at`. `at` must not precede the last
    /// consumed slot (the engine only schedules future work).
    pub fn insert(&mut self, at: Slot, id: TaskId) {
        debug_assert!(at >= self.base, "insert at {at} before window base");
        if at >= self.base.saturating_add(WINDOW_SLOTS) {
            self.overflow_min = self.overflow_min.min(at);
            self.overflow.push((at, id));
            return;
        }
        let b = Self::bucket_of(at);
        self.buckets[b].push(id); // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
        self.occupied[b / 64] |= 1u64 << (b % 64); // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
        self.in_window += 1;
    }

    /// Removes and returns every entry registered at slot `t`.
    /// Callers consume slots in nondecreasing order.
    pub fn take(&mut self, t: Slot) -> Vec<TaskId> {
        if t >= self.base.saturating_add(WINDOW_SLOTS) {
            self.rotate(t);
        }
        debug_assert!(t >= self.base, "take at {t} before window base");
        let b = Self::bucket_of(t);
        // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
        if self.occupied[b / 64] & (1u64 << (b % 64)) == 0 {
            return Vec::new();
        }
        self.occupied[b / 64] &= !(1u64 << (b % 64)); // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
        let out = std::mem::take(&mut self.buckets[b]); // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
        self.in_window -= out.len();
        out
    }

    /// Number of entries registered at exactly slot `t` (without
    /// consuming them) — the tickless layer's fits-on-M precheck.
    pub fn due_count(&self, t: Slot) -> usize {
        if t >= self.base && t < self.base.saturating_add(WINDOW_SLOTS) {
            self.buckets[Self::bucket_of(t)].len() // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
        } else {
            self.overflow.iter().filter(|(at, _)| *at == t).count()
        }
    }

    /// The earliest occupied slot `≥ from`, or `None` when the ring
    /// holds nothing at or after `from`. This is exact (overflow
    /// entries included via their maintained minimum), so batching can
    /// trust a `None` to mean "nothing ahead at all".
    pub fn next_occupied(&self, from: Slot) -> Option<Slot> {
        if self.in_window > 0 {
            let end = self.base.saturating_add(WINDOW_SLOTS);
            let mut s = from.max(self.base);
            while s < end {
                // Word-window alignment: buckets `s mod WINDOW` share a
                // word exactly when the slots share `s div 64` (WINDOW
                // is a multiple of 64), so one masked word covers slots
                // `s ..= s | 63`.
                let b = Self::bucket_of(s);
                let bit = s.rem_euclid(64);
                let word = self.occupied[b / 64]; // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
                let masked = word & (u64::MAX << usize::try_from(bit).unwrap_or(0));
                if masked != 0 {
                    let hit = s + i64::from(masked.trailing_zeros()) - bit;
                    if hit < end {
                        return Some(hit);
                    }
                    break;
                }
                s = s + 64 - bit;
            }
        }
        if self.overflow.is_empty() || self.overflow_min < from {
            // `overflow_min < from` cannot happen for in-order consumers
            // (overflow slots sit beyond the window, hence beyond `from`);
            // treat it as exhausted rather than report a past slot.
            None
        } else {
            Some(self.overflow_min)
        }
    }

    /// Total entries (bucketed + overflow).
    pub fn len(&self) -> usize {
        self.in_window + self.overflow.len()
    }

    /// `true` iff the ring holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical persist projection of the ring: the window base, the
    /// bucketed entries grouped by absolute slot in ascending slot
    /// order (insertion order preserved within a slot), and the
    /// overflow list verbatim. Each occupied bucket `b` corresponds to
    /// the unique slot `s ∈ [base, base + WINDOW)` with
    /// `s ≡ b (mod WINDOW)`, so the absolute slots are recoverable
    /// without storing the rotation offset separately —
    /// [`CalendarRing::from_parts`] rebuilds the bitmap, live count,
    /// and overflow minimum from this projection alone.
    pub fn persist_parts(&self) -> (Slot, RingBuckets, RingOverflow) {
        let mut bucketed = Vec::new();
        if self.in_window > 0 {
            let end = self.base.saturating_add(WINDOW_SLOTS);
            let mut s = self.base;
            while s < end {
                let b = Self::bucket_of(s);
                // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
                if self.occupied[b / 64] & (1u64 << (b % 64)) != 0 {
                    // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
                    bucketed.push((s, self.buckets[b].clone()));
                }
                s += 1;
            }
        }
        (self.base, bucketed, self.overflow.clone())
    }

    /// Rebuilds a ring from a [`CalendarRing::persist_parts`]
    /// projection, re-validating the window invariants: bucketed slots
    /// inside `[base, base + WINDOW)` with non-empty entry lists, and
    /// overflow entries strictly beyond the window.
    pub fn from_parts(
        base: Slot,
        bucketed: RingBuckets,
        overflow: RingOverflow,
    ) -> Result<CalendarRing, String> {
        let mut ring = CalendarRing::new(base);
        let end = base.saturating_add(WINDOW_SLOTS);
        for (slot, ids) in bucketed {
            if slot < base || slot >= end {
                return Err(format!(
                    "bucketed slot {slot} outside window [{base}, {end})"
                ));
            }
            if ids.is_empty() {
                return Err(format!("empty bucket recorded at slot {slot}"));
            }
            for id in ids {
                ring.insert(slot, id);
            }
        }
        for (at, id) in overflow {
            if at < end {
                return Err(format!(
                    "overflow entry at {at} inside window [{base}, {end})"
                ));
            }
            ring.insert(at, id);
        }
        Ok(ring)
    }

    /// Rebases the window at `t` and pulls newly-in-range overflow
    /// entries into buckets. Only called once `t` has moved past the
    /// whole current window, by which point every bucketed entry has
    /// been consumed (callers take slots in order and never skip an
    /// occupied one), so the buckets are empty.
    fn rotate(&mut self, t: Slot) {
        debug_assert_eq!(self.in_window, 0, "rotating over unconsumed entries");
        if self.in_window != 0 {
            // Defensive: a (contract-violating) skipped entry sits at a
            // past slot, where it could alias a future bucket. Its
            // BTreeMap equivalent — a key never queried again — would
            // never fire either; drop it rather than misfire it.
            for bucket in &mut self.buckets {
                bucket.clear();
            }
            self.occupied = [0; WORDS];
            self.in_window = 0;
        }
        self.base = t;
        if self.overflow.is_empty() {
            return;
        }
        let end = t.saturating_add(WINDOW_SLOTS);
        let mut kept: Vec<(Slot, TaskId)> = Vec::new();
        let mut kept_min = NEVER;
        for (at, id) in std::mem::take(&mut self.overflow) {
            if at < end {
                debug_assert!(at >= t, "overflow entry at {at} already passed");
                if at >= t {
                    let b = Self::bucket_of(at);
                    self.buckets[b].push(id); // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
                    self.occupied[b / 64] |= 1u64 << (b % 64); // audit: allow(panic-reach, bucket index is reduced mod RING_BUCKETS and /64 fits the occupancy words)
                    self.in_window += 1;
                }
            } else {
                kept_min = kept_min.min(at);
                kept.push((at, id));
            }
        }
        self.overflow = kept;
        self.overflow_min = kept_min;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: Vec<TaskId>) -> Vec<u32> {
        v.into_iter().map(|t| t.0).collect()
    }

    #[test]
    fn take_returns_entries_in_insertion_order() {
        let mut r = CalendarRing::new(0);
        r.insert(3, TaskId(5));
        r.insert(3, TaskId(2));
        r.insert(4, TaskId(9));
        assert_eq!(ids(r.take(0)), Vec::<u32>::new());
        assert_eq!(ids(r.take(3)), vec![5, 2]);
        assert_eq!(ids(r.take(3)), Vec::<u32>::new());
        assert_eq!(ids(r.take(4)), vec![9]);
        assert!(r.is_empty());
    }

    #[test]
    fn due_count_matches_without_consuming() {
        let mut r = CalendarRing::new(0);
        r.insert(7, TaskId(1));
        r.insert(7, TaskId(2));
        assert_eq!(r.due_count(7), 2);
        assert_eq!(r.due_count(6), 0);
        assert_eq!(r.len(), 2);
        assert_eq!(ids(r.take(7)), vec![1, 2]);
        assert_eq!(r.due_count(7), 0);
    }

    #[test]
    fn next_occupied_is_exact_within_the_window() {
        let mut r = CalendarRing::new(0);
        assert_eq!(r.next_occupied(0), None);
        r.insert(130, TaskId(0));
        r.insert(5, TaskId(1));
        assert_eq!(r.next_occupied(0), Some(5));
        assert_eq!(r.next_occupied(5), Some(5));
        assert_eq!(r.next_occupied(6), Some(130));
        r.take(5);
        assert_eq!(r.next_occupied(0), Some(130));
        r.take(130);
        assert_eq!(r.next_occupied(0), None);
    }

    #[test]
    fn overflow_entries_report_and_migrate() {
        let mut r = CalendarRing::new(0);
        let far = WINDOW_SLOTS + 300; // beyond the initial window
        r.insert(far, TaskId(3));
        r.insert(far + 700, TaskId(4)); // beyond even the rotated window
        assert_eq!(r.next_occupied(0), Some(far));
        assert_eq!(r.due_count(far), 1);
        // Consuming slots in order up to `far` crosses a rotation.
        for t in 0..far {
            assert_eq!(r.take(t), Vec::new());
        }
        assert_eq!(ids(r.take(far)), vec![3]);
        assert_eq!(r.next_occupied(far + 1), Some(far + 700));
        assert_eq!(ids(r.take(far + 700)), vec![4]);
        assert!(r.is_empty());
    }

    #[test]
    fn next_occupied_scans_across_word_boundaries() {
        let mut r = CalendarRing::new(0);
        // One entry far into the window, past several bitmap words,
        // at a non-word-aligned slot.
        r.insert(389, TaskId(7));
        assert_eq!(r.next_occupied(0), Some(389));
        assert_eq!(r.next_occupied(389), Some(389));
        assert_eq!(r.next_occupied(390), None);
    }

    #[test]
    fn nonzero_base_and_unaligned_rotation() {
        let mut r = CalendarRing::new(37);
        r.insert(37, TaskId(0));
        assert_eq!(ids(r.take(37)), vec![0]);
        // Jump far ahead (in-order: every slot between is empty).
        let late = 37 + 3 * WINDOW_SLOTS + 11;
        r.insert(40, TaskId(1));
        assert_eq!(ids(r.take(40)), vec![1]);
        for t in 41..late {
            assert!(r.take(t).is_empty());
        }
        r.insert(late + 2, TaskId(5));
        assert_eq!(r.next_occupied(late), Some(late + 2));
        assert_eq!(ids(r.take(late + 2)), vec![5]);
    }

    #[test]
    fn interleaved_insert_take_streams() {
        // Inserts race ahead of takes, as the engine's release chain
        // does: each consumed release schedules the next.
        let mut r = CalendarRing::new(0);
        r.insert(0, TaskId(0));
        let mut got = Vec::new();
        for t in 0..2_000 {
            for id in r.take(t) {
                got.push(t);
                r.insert(t + 7, id); // successor release
            }
        }
        assert_eq!(got, (0..2_000).step_by(7).collect::<Vec<i64>>());
    }
}
