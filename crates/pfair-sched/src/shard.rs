//! Shard supervisor: population-scale workloads across independent
//! engine shards.
//!
//! One engine over `10⁵–10⁶` tasks is limited by single-core slot
//! throughput. But Pfair feasibility is *per processor pool*: condition
//! (W) constrains `Σ swt ≤ M` within one scheduled pool, and two pools
//! that never exchange tasks never interact. A [`ShardSet`] exploits
//! that: it partitions a global workload across `N` independent
//! [`Engine`] shards, each with its own processor budget and its own
//! condition-(W) admission, and drives them through the deterministic
//! worker pool ([`pfair_core::pool`]) segment by segment.
//!
//! ## Sharding invariant
//!
//! Each shard is a complete PD² engine: within a shard every guarantee
//! of the paper holds verbatim (Theorem 2 per shard, drift bounds per
//! task per era). Across shards the supervisor adds exactly one
//! mechanism — **migration by leave/rejoin**: moving a task injects a
//! `Leave` on its source shard and a fresh-id `Join` with its recorded
//! weight on the target, both through the online-injection path, so a
//! migration is indistinguishable from the paper's own LJ reweighting
//! event pair and inherits its drift accounting (the rejoin opens a new
//! era whose drift sample is taken against the target shard's ideals).
//! Because shards share no mutable state, driving them on 1, 2, or 8
//! worker threads is the same computation in a different order of
//! completion — [`par_map_threads`] returns results in input order, so
//! a [`ShardReport`] renders **byte-identically across pool widths**.
//! Across *shard counts* the per-task trajectories are preserved for
//! reweight-free feasible workloads (every shard schedules its members
//! miss-free, and ideal trackers depend only on the task's own event
//! times), which the shard-count determinism suite pins on the
//! aggregate: per-task scheduled quanta, per-task drift samples, ideal
//! totals, and total misses are invariant in `N`.
//!
//! ## Placement
//!
//! Joins are routed to the least-utilized shard (ties to the lowest
//! index) by an exact-rational supervisor ledger of *requested*
//! weights, preferring shards where the join keeps the per-shard
//! condition (W) satisfied. The ledger is a placement heuristic; each
//! shard's own [`AdmissionPolicy`] remains the authority that clamps
//! or rejects. Optional rebalancing migrates the lightest task from
//! the most- to the least-loaded shard at segment boundaries whenever
//! that strictly narrows the utilization gap.

use std::collections::BTreeSet;

use crate::admission::AdmissionPolicy;
use crate::engine::{Engine, SimConfig};
use crate::event::{Event, EventKind, Workload};
use crate::overhead::Counters;
use crate::reweight::Scheme;
use crate::trace::SimResult;
use pfair_core::drift::DriftSample;
use pfair_core::pool::par_map_threads;
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_core::weight::Weight;
use pfair_json::{obj, Json, ToJson};
use pfair_obs::{MetricsProbe, Registry};

// Shards cross thread boundaries inside `run`; keep the engine's
// sendability pinned where the supervisor depends on it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Engine<MetricsProbe>>();
};

/// Static shape of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Number of independent engine shards.
    pub shards: usize,
    /// Processor budget `M` of every shard.
    pub processors_per_shard: u32,
    /// Slots to simulate.
    pub horizon: Slot,
    /// Reweighting scheme of every shard.
    pub scheme: Scheme,
    /// Per-shard condition-(W) policing.
    pub admission: AdmissionPolicy,
    /// Segment length: global events are routed and rebalancing runs at
    /// multiples of this many slots.
    pub segment: Slot,
    /// Migrate tasks between shards at segment boundaries to narrow
    /// utilization imbalance.
    pub rebalance: bool,
    /// Worker-pool width for driving shards (output is byte-identical
    /// at any width; see the module docs).
    pub threads: usize,
    /// Enable per-shard busy-span batching. Off by default: arming
    /// clones the whole task slab per attempt, which is the wrong trade
    /// at population scale (10⁵–10⁶ tasks per shard).
    pub busy_span: bool,
}

impl ShardSpec {
    /// A spec with the scale-out defaults: PD²-OI, policing admission,
    /// 64-slot segments, no rebalancing, single worker, no busy-span.
    pub fn new(shards: usize, processors_per_shard: u32, horizon: Slot) -> ShardSpec {
        ShardSpec {
            shards: shards.max(1),
            processors_per_shard,
            horizon,
            scheme: Scheme::Oi,
            admission: AdmissionPolicy::Police,
            segment: 64,
            rebalance: false,
            threads: 1,
            busy_span: false,
        }
    }

    /// Builder-style: set the worker-pool width.
    pub fn with_threads(mut self, threads: usize) -> ShardSpec {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style: set the segment length.
    pub fn with_segment(mut self, segment: Slot) -> ShardSpec {
        self.segment = segment.max(1);
        self
    }

    /// Builder-style: set the reweighting scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> ShardSpec {
        self.scheme = scheme;
        self
    }

    /// Builder-style: set the admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> ShardSpec {
        self.admission = admission;
        self
    }

    /// Builder-style: enable boundary rebalancing.
    pub fn with_rebalance(mut self) -> ShardSpec {
        self.rebalance = true;
        self
    }

    fn engine_config(&self) -> SimConfig {
        let cfg = SimConfig::oi(self.processors_per_shard, self.horizon)
            .with_scheme(self.scheme.clone())
            .with_admission(self.admission);
        if self.busy_span {
            cfg
        } else {
            cfg.without_busy_span()
        }
    }
}

/// Where one incarnation of a global task lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Placement {
    shard: usize,
    local: TaskId,
}

/// Supervisor over `N` independent engine shards (see module docs).
pub struct ShardSet {
    spec: ShardSpec,
    engines: Vec<Engine<MetricsProbe>>,
    /// Global event stream (time-sorted, insertion-stable), with cursor.
    events: Vec<Event>,
    next_event: usize,
    /// Current placement of each global task (`None` = not in system).
    route: Vec<Option<Placement>>,
    /// Every placement each global task ever had, in join order — the
    /// report maps per-incarnation results back to global ids with it.
    incarnations: Vec<Vec<Placement>>,
    /// Last requested weight of each global task (migration rejoins
    /// re-request it; the target shard's admission re-polices).
    weights: Vec<Option<Weight>>,
    /// Next fresh local id per shard (fresh on every rejoin: local ids
    /// are incarnation names, never reused, so a migration can never
    /// collide with a rule-L-delayed departure of the same task).
    local_count: Vec<u32>,
    /// Per shard: global ids of its current members (BTree for
    /// deterministic iteration).
    members: Vec<BTreeSet<u32>>,
    /// Per shard: exact requested-weight utilization ledger.
    util: Vec<Rational>,
    now: Slot,
    migrations: u64,
}

impl ShardSet {
    /// Builds a supervisor over `spec.shards` empty engines and the
    /// global `workload`'s event stream. Nothing is routed yet; events
    /// flow into shards as [`ShardSet::run`] reaches their slots.
    pub fn new(spec: ShardSpec, workload: &Workload) -> ShardSet {
        let engines = (0..spec.shards)
            .map(|_| {
                Engine::with_probe(spec.engine_config(), &Workload::new(), MetricsProbe::new())
            })
            .collect();
        let shards = spec.shards;
        ShardSet {
            engines,
            events: workload.sorted_events(),
            next_event: 0,
            route: Vec::new(),
            incarnations: Vec::new(),
            weights: Vec::new(),
            local_count: vec![0; shards],
            members: vec![BTreeSet::new(); shards],
            util: vec![Rational::ZERO; shards],
            now: 0,
            migrations: 0,
            spec,
        }
    }

    /// The supervisor clock (a segment boundary).
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Total leave/rejoin migrations enacted so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The exact requested-weight utilization ledger, one entry per
    /// shard (placement heuristic; see module docs).
    pub fn utilization(&self) -> &[Rational] {
        &self.util
    }

    /// Runs every shard to the horizon, routing global events and (if
    /// enabled) rebalancing at each segment boundary.
    pub fn run(&mut self) {
        while self.now < self.spec.horizon {
            self.run_segments(1);
        }
    }

    /// Drives at most `count` more segments (stopping at the horizon) —
    /// the incremental form of [`ShardSet::run`] for callers that
    /// interleave their own supervision (forced migrations, ledger
    /// inspection) with progress.
    pub fn run_segments(&mut self, count: usize) {
        for _ in 0..count {
            if self.now >= self.spec.horizon {
                break;
            }
            let seg_end = self
                .now
                .saturating_add(self.spec.segment.max(1))
                .min(self.spec.horizon);
            self.route_events_before(seg_end);
            self.drive_to(seg_end);
            self.now = seg_end;
            if self.spec.rebalance && self.now < self.spec.horizon {
                self.rebalance_once();
            }
        }
    }

    /// Routes every pending global event due before `until` into its
    /// shard (in stream order, which injection order preserves).
    fn route_events_before(&mut self, until: Slot) {
        while let Some(&event) = self.events.get(self.next_event) {
            if event.at >= until {
                break;
            }
            self.next_event += 1;
            self.route_event(event);
        }
    }

    fn ensure_global(&mut self, idx: usize) {
        if idx >= self.route.len() {
            self.route.resize(idx + 1, None);
            self.incarnations.resize(idx + 1, Vec::new());
            self.weights.resize(idx + 1, None);
        }
    }

    fn route_event(&mut self, event: Event) {
        let g = event.task.idx();
        self.ensure_global(g);
        match event.kind {
            EventKind::Join(w) => {
                if self.route[g].is_some() {
                    debug_assert!(false, "global task {} joined twice", event.task);
                    return;
                }
                let shard = self.place(w.value());
                self.admit(g, shard, w, event.at);
            }
            EventKind::Leave => {
                let Some(p) = self.route[g] else { return };
                self.engines[p.shard].inject(Event {
                    at: event.at,
                    task: p.local,
                    kind: EventKind::Leave,
                });
                self.depart(g, p.shard);
            }
            EventKind::Reweight(w) => {
                let Some(p) = self.route[g] else { return };
                self.engines[p.shard].inject(Event {
                    at: event.at,
                    task: p.local,
                    kind: EventKind::Reweight(w),
                });
                let old = self.weights[g].map_or(Rational::ZERO, Weight::value);
                self.util[p.shard] = self.util[p.shard] - old + w.value();
                self.weights[g] = Some(w);
            }
            EventKind::Delay(by) => {
                let Some(p) = self.route[g] else { return };
                self.engines[p.shard].inject(Event {
                    at: event.at,
                    task: p.local,
                    kind: EventKind::Delay(by),
                });
            }
        }
    }

    /// Least-utilized shard that keeps per-shard condition (W)
    /// satisfied with the new weight; ties to the lowest index. Falls
    /// back to the least-utilized shard overall (whose admission policy
    /// then clamps or rejects) when no shard fits.
    fn place(&self, w: Rational) -> usize {
        let cap = Rational::from_int(i128::from(self.spec.processors_per_shard));
        let mut fitting: Option<usize> = None;
        let mut least = 0usize;
        for (s, u) in self.util.iter().enumerate() {
            if *u < self.util[least] {
                least = s;
            }
            if *u + w <= cap && fitting.is_none_or(|b| *u < self.util[b]) {
                fitting = Some(s);
            }
        }
        fitting.unwrap_or(least)
    }

    /// Admits global task `g` into `shard` under a fresh local id.
    fn admit(&mut self, g: usize, shard: usize, w: Weight, at: Slot) {
        let local = TaskId(self.local_count[shard]);
        self.local_count[shard] += 1;
        self.engines[shard].ensure_task_capacity(local.0 + 1);
        self.engines[shard].inject(Event {
            at,
            task: local,
            kind: EventKind::Join(w),
        });
        let placement = Placement { shard, local };
        self.route[g] = Some(placement);
        self.incarnations[g].push(placement);
        self.weights[g] = Some(w);
        // audit: allow(lossy-cast, global event task ids are u32 by construction)
        self.members[shard].insert(g as u32);
        self.util[shard] += w.value();
    }

    /// Drops global task `g` from the supervisor's books (the engine
    /// may still be draining it under the rule-L departure delay).
    fn depart(&mut self, g: usize, shard: usize) {
        // audit: allow(lossy-cast, global event task ids are u32 by construction)
        self.members[shard].remove(&(g as u32));
        let w = self.weights[g].map_or(Rational::ZERO, Weight::value);
        self.util[shard] -= w;
        self.route[g] = None;
    }

    /// Migrates one global task by leave/rejoin at the current segment
    /// boundary: a `Leave` on its source shard, a fresh-id `Join` with
    /// its recorded weight on `to` — both injected, both policed by the
    /// shards' own admission. Returns `false` (and does nothing) when
    /// the task is not in the system, `to` is out of range, or the
    /// task already lives on `to`.
    pub fn migrate_task(&mut self, global: u32, to: usize) -> bool {
        let g = TaskId(global).idx();
        if g >= self.route.len() || to >= self.spec.shards {
            return false;
        }
        let Some(p) = self.route[g] else { return false };
        if p.shard == to {
            return false;
        }
        let Some(w) = self.weights[g] else {
            return false;
        };
        self.engines[p.shard].inject(Event {
            at: self.now,
            task: p.local,
            kind: EventKind::Leave,
        });
        self.depart(g, p.shard);
        self.admit(g, to, w, self.now);
        self.migrations += 1;
        true
    }

    /// One rebalancing step: migrate the lightest member of the most-
    /// loaded shard to the least-loaded one, provided that strictly
    /// narrows the utilization gap (`2·w ≤ gap`). Deterministic: ties
    /// resolve to the lowest shard index and the smallest (weight,
    /// global id) pair.
    fn rebalance_once(&mut self) {
        if self.spec.shards < 2 {
            return;
        }
        let (mut hi, mut lo) = (0usize, 0usize);
        for (s, u) in self.util.iter().enumerate() {
            if *u > self.util[hi] {
                hi = s;
            }
            if *u < self.util[lo] {
                lo = s;
            }
        }
        let gap = self.util[hi] - self.util[lo];
        if !gap.is_positive() {
            return;
        }
        let mut best: Option<(Rational, u32)> = None;
        for &g in &self.members[hi] {
            let Some(w) = self.weights[TaskId(g).idx()] else {
                continue;
            };
            let w = w.value();
            if w + w <= gap && best.is_none_or(|(bw, bg)| (w, g) < (bw, bg)) {
                best = Some((w, g));
            }
        }
        if let Some((_, g)) = best {
            self.migrate_task(g, lo);
        }
    }

    /// Drives every shard to `until` on the worker pool. Shards are
    /// independent, the pool returns them in input order, and each
    /// engine is deterministic — so the state after this call does not
    /// depend on `spec.threads`.
    fn drive_to(&mut self, until: Slot) {
        let engines = std::mem::take(&mut self.engines);
        self.engines = par_map_threads(self.spec.threads.max(1), engines, |mut engine| {
            engine.run_to(until);
            engine
        });
    }

    /// Runs to the horizon (if not already there) and aggregates every
    /// shard's results into a [`ShardReport`].
    pub fn finish(mut self) -> ShardReport {
        self.run();
        let mut registry = Registry::new();
        let mut per_shard = Vec::with_capacity(self.spec.shards);
        let mut results: Vec<SimResult> = Vec::with_capacity(self.spec.shards);
        for (shard, engine) in self.engines.into_iter().enumerate() {
            let (result, probe) = engine.finish_with_probe();
            registry.merge(probe.registry());
            per_shard.push(ShardSummary {
                shard,
                local_tasks: result.tasks.len(),
                scheduled_quanta: result.counters.scheduled_quanta,
                misses: result.misses.len(),
                counters: result.counters,
            });
            results.push(result);
        }
        registry.inc("shard.migrations", self.migrations);
        let tasks = self
            .incarnations
            .iter()
            .enumerate()
            .map(|(g, placements)| {
                let mut summary = GlobalTaskSummary {
                    // audit: allow(lossy-cast, global event task ids are u32 by construction)
                    id: g as u32,
                    scheduled_count: 0,
                    ps_total: Rational::ZERO,
                    isw_total: Rational::ZERO,
                    drift: Vec::new(),
                };
                for p in placements {
                    let tr = results[p.shard].task(p.local);
                    summary.scheduled_count += tr.scheduled_count;
                    summary.ps_total += tr.ps_total;
                    summary.isw_total += tr.isw_total;
                    summary.drift.extend_from_slice(tr.drift.samples());
                }
                summary
            })
            .collect();
        ShardReport {
            shards: self.spec.shards,
            processors_per_shard: self.spec.processors_per_shard,
            horizon: self.spec.horizon,
            migrations: self.migrations,
            per_shard,
            tasks,
            registry,
        }
    }
}

/// One shard's aggregate outcome.
#[derive(Clone, Debug)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Local task slots the shard ended with (incarnations, not
    /// currently-present tasks).
    pub local_tasks: usize,
    /// Quanta the shard scheduled.
    pub scheduled_quanta: u64,
    /// Deadline misses the shard recorded.
    pub misses: usize,
    /// The shard's full overhead counters.
    pub counters: Counters,
}

impl ToJson for ShardSummary {
    fn to_json(&self) -> Json {
        obj([
            ("shard", self.shard.to_json()),
            ("local_tasks", self.local_tasks.to_json()),
            ("scheduled_quanta", self.scheduled_quanta.to_json()),
            ("misses", self.misses.to_json()),
            ("counters", self.counters.to_json()),
        ])
    }
}

/// One global task's outcome, summed over its incarnations (placements
/// across migrations), drift samples concatenated in incarnation order.
#[derive(Clone, Debug)]
pub struct GlobalTaskSummary {
    /// Global task id.
    pub id: u32,
    /// Quanta scheduled across all incarnations.
    pub scheduled_count: u64,
    /// `I_PS` allocation summed across incarnations.
    pub ps_total: Rational,
    /// `I_SW` allocation summed across incarnations.
    pub isw_total: Rational,
    /// Drift samples of every era, in incarnation order.
    pub drift: Vec<DriftSample>,
}

impl ToJson for GlobalTaskSummary {
    fn to_json(&self) -> Json {
        obj([
            ("id", self.id.to_json()),
            ("scheduled_count", self.scheduled_count.to_json()),
            ("ps_total", self.ps_total.to_json()),
            ("isw_total", self.isw_total.to_json()),
            ("drift", self.drift.to_json()),
        ])
    }
}

/// Aggregated outcome of a sharded run.
///
/// [`ShardReport::to_json`] is the full rendering (byte-identical
/// across pool widths); [`ShardReport::invariant_json`] is the subset
/// the shard-count determinism suite pins — the figures that must not
/// depend on how a reweight-free feasible workload was partitioned.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Number of shards.
    pub shards: usize,
    /// Processor budget of every shard.
    pub processors_per_shard: u32,
    /// Simulated horizon.
    pub horizon: Slot,
    /// Leave/rejoin migrations enacted.
    pub migrations: u64,
    /// Per-shard aggregates, in shard order.
    pub per_shard: Vec<ShardSummary>,
    /// Per-global-task aggregates, in id order.
    pub tasks: Vec<GlobalTaskSummary>,
    /// Every shard's metrics merged into one exact-integer registry
    /// (plus the supervisor's own `shard.migrations` counter).
    pub registry: Registry,
}

impl ShardReport {
    /// Total quanta scheduled across all shards.
    pub fn scheduled_quanta(&self) -> u64 {
        self.per_shard.iter().map(|s| s.scheduled_quanta).sum()
    }

    /// Total deadline misses across all shards.
    pub fn misses(&self) -> usize {
        self.per_shard.iter().map(|s| s.misses).sum()
    }

    /// The partition-invariant subset (see the type docs), rendered
    /// canonically.
    pub fn invariant_json(&self) -> String {
        obj([
            ("horizon", self.horizon.to_json()),
            ("scheduled_quanta", self.scheduled_quanta().to_json()),
            ("misses", self.misses().to_json()),
            ("tasks", self.tasks.to_json()),
        ])
        .to_string_pretty()
    }
}

impl ToJson for ShardReport {
    fn to_json(&self) -> Json {
        obj([
            ("shards", self.shards.to_json()),
            ("processors_per_shard", self.processors_per_shard.to_json()),
            ("horizon", self.horizon.to_json()),
            ("migrations", self.migrations.to_json()),
            ("scheduled_quanta", self.scheduled_quanta().to_json()),
            ("misses", self.misses().to_json()),
            ("per_shard", self.per_shard.to_json()),
            ("tasks", self.tasks.to_json()),
            ("metrics", self.registry.snapshot_text().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    /// `n` tasks of weight 1/4 joining at slot 0.
    fn quarters(n: u32) -> Workload {
        let mut w = Workload::new();
        for t in 0..n {
            w.join(t, 0, 1, 4);
        }
        w
    }

    #[test]
    fn joins_spread_to_least_utilized_shard() {
        let spec = ShardSpec::new(4, 2, 8);
        let mut set = ShardSet::new(spec, &quarters(8));
        set.run();
        // 8 × 1/4 across 4 shards, least-utilized-first: two per shard.
        assert_eq!(set.utilization(), &[rat(1, 2); 4]);
    }

    #[test]
    fn single_shard_matches_plain_simulation() {
        // A 1-shard set routed through the injection path must agree
        // with the classic stream-driven engine on every invariant
        // figure: same tasks, same slots, same drift samples.
        let w = quarters(6);
        let spec = ShardSpec::new(1, 2, 24);
        let config = spec.engine_config();
        let report = ShardSet::new(spec, &w).finish();
        let reference = crate::engine::simulate(config, &w);
        assert_eq!(report.misses(), reference.misses.len());
        assert_eq!(
            report.scheduled_quanta(),
            reference.counters.scheduled_quanta
        );
        for (summary, tr) in report.tasks.iter().zip(reference.tasks.iter()) {
            assert_eq!(summary.scheduled_count, tr.scheduled_count);
            assert_eq!(summary.ps_total, tr.ps_total);
            assert_eq!(summary.isw_total, tr.isw_total);
            assert_eq!(summary.drift, tr.drift.samples());
        }
    }

    #[test]
    fn migration_is_leave_rejoin_with_fresh_id() {
        let mut set = ShardSet::new(ShardSpec::new(2, 2, 32).with_segment(8), &quarters(4));
        set.run_segments(1);
        assert!(set.migrate_task(0, 1));
        assert_eq!(set.migrations(), 1);
        // The rejoin took a fresh local id on shard 1 (ids 0/1 were the
        // tasks placed there at slot 0).
        let p = set.route[0].expect("task 0 re-routed");
        assert_eq!(p.shard, 1);
        assert!(p.local.0 >= 2);
        let report = set.finish();
        assert_eq!(report.migrations, 1);
        assert_eq!(report.misses(), 0);
    }

    #[test]
    fn rebalance_narrows_the_gap() {
        // All joins at slot 0 land balanced; skew the ledger by joining
        // late tasks while one shard is already loaded.
        let mut w = Workload::new();
        for t in 0..4 {
            w.join(t, 0, 1, 4); // 4 × 1/4 → spread 2 shards, 1/2 each
        }
        for t in 4..6 {
            w.join(t, 1, 1, 4); // still spread evenly
        }
        let mut set = ShardSet::new(
            ShardSpec::new(2, 2, 64).with_segment(16).with_rebalance(),
            &w,
        );
        set.run();
        let gap = set.util[0] - set.util[1];
        assert!(
            !gap.is_positive() || gap <= rat(1, 4),
            "rebalancing left a gap of {gap:?}"
        );
        assert_eq!(set.finish().misses(), 0);
    }
}
