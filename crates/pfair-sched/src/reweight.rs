//! Reweighting schemes: PD²-OI, PD²-LJ, and hybrids.
//!
//! * **PD²-OI** (rules O and I, paper §3.2) is *fine-grained*: each
//!   event adds at most 2 quanta of drift (Theorem 5). An
//!   omission-changeable task (its last-released subtask not yet
//!   scheduled) halts that subtask and re-enters almost immediately; an
//!   ideal-changeable task (subtask already scheduled) enacts an
//!   increase instantly, a decrease at the subtask's `I_SW` completion.
//! * **PD²-LJ** (Srinivasan & Anderson's leave/join rules L and J) is
//!   *coarse-grained*: the task must wait until `d(T_i) + b(T_i)` of its
//!   last-scheduled subtask before leaving, so one event can add
//!   `Θ(1/weight)` drift (Theorem 3) — but the scheme never touches the
//!   `I_SW` bookkeeping and performs fewer queue operations.
//! * **Hybrid** policies realize the *efficiency-versus-accuracy*
//!   trade-off of the companion WPDRTS'05 paper: each event is handled
//!   OI-style or LJ-style depending on a policy (magnitude threshold,
//!   per-window OI budget, or a deterministic fraction), letting a
//!   system buy accuracy only for the changes that matter.

use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;

/// Per-event choice made by a hybrid policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleChoice {
    /// Handle this event with the fine-grained O/I rules.
    FineGrained,
    /// Handle this event with coarse-grained leave/join.
    LeaveJoin,
}

/// Policy deciding, per reweighting event, between OI and LJ handling.
#[derive(Clone, Debug, PartialEq)]
pub enum HybridPolicy {
    /// Use OI only when the relative weight change is at least the given
    /// threshold: `|v − w| ≥ threshold · w`. Small corrections ride the
    /// cheap LJ path; large swings get the accurate one.
    MagnitudeThreshold(Rational),
    /// Allow at most `budget` OI-handled events per task per `window`
    /// slots; excess events fall back to LJ. Caps the rate of costly
    /// fine-grained operations.
    OiBudget {
        /// Maximum OI events per task per window.
        budget: u32,
        /// Window length in slots.
        window: Slot,
    },
    /// Handle every `1/fraction`-th event (per task) with OI: a
    /// deterministic interleaving used for trade-off sweeps.
    /// `fraction = 1` is pure OI, very large values approach pure LJ.
    EveryNth(u32),
    /// Feedback control (the paper's §6 pointer to Lu et al. \[8\]):
    /// events ride the cheap leave/join path while the task's
    /// accumulated |drift| stays under the threshold, and switch to the
    /// fine-grained rules once it crosses — accuracy is bought exactly
    /// when the error budget runs low.
    DriftFeedback(Rational),
}

/// The reweighting scheme a simulation runs under.
#[derive(Clone, Debug, PartialEq)]
pub enum Scheme {
    /// PD²-OI: fine-grained rules O and I.
    Oi,
    /// PD²-LJ: leave with the old weight, rejoin with the new one.
    LeaveJoin,
    /// Per-event choice by a [`HybridPolicy`].
    Hybrid(HybridPolicy),
}

impl pfair_json::ToJson for HybridPolicy {
    fn to_json(&self) -> pfair_json::Json {
        match self {
            HybridPolicy::MagnitudeThreshold(thr) => pfair_json::obj([
                ("kind", "magnitude_threshold".to_string().to_json()),
                ("threshold", thr.to_json()),
            ]),
            HybridPolicy::OiBudget { budget, window } => pfair_json::obj([
                ("kind", "oi_budget".to_string().to_json()),
                ("budget", budget.to_json()),
                ("window", window.to_json()),
            ]),
            HybridPolicy::EveryNth(n) => pfair_json::obj([
                ("kind", "every_nth".to_string().to_json()),
                ("n", n.to_json()),
            ]),
            HybridPolicy::DriftFeedback(thr) => pfair_json::obj([
                ("kind", "drift_feedback".to_string().to_json()),
                ("threshold", thr.to_json()),
            ]),
        }
    }
}

impl pfair_json::FromJson for HybridPolicy {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        let kind: String = value.field("kind")?;
        match kind.as_str() {
            "magnitude_threshold" => {
                Ok(HybridPolicy::MagnitudeThreshold(value.field("threshold")?))
            }
            "oi_budget" => {
                let window: Slot = value.field("window")?;
                if window < 1 {
                    return Err(pfair_json::JsonError::new(
                        "OI-budget window must be positive",
                    ));
                }
                Ok(HybridPolicy::OiBudget {
                    budget: value.field("budget")?,
                    window,
                })
            }
            "every_nth" => Ok(HybridPolicy::EveryNth(value.field("n")?)),
            "drift_feedback" => Ok(HybridPolicy::DriftFeedback(value.field("threshold")?)),
            other => Err(pfair_json::JsonError::new(format!(
                "unknown hybrid policy kind `{other}`"
            ))),
        }
    }
}

impl pfair_json::ToJson for Scheme {
    fn to_json(&self) -> pfair_json::Json {
        match self {
            Scheme::Oi => pfair_json::obj([("kind", "oi".to_string().to_json())]),
            Scheme::LeaveJoin => pfair_json::obj([("kind", "leave_join".to_string().to_json())]),
            Scheme::Hybrid(policy) => pfair_json::obj([
                ("kind", "hybrid".to_string().to_json()),
                ("policy", policy.to_json()),
            ]),
        }
    }
}

impl pfair_json::FromJson for Scheme {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        let kind: String = value.field("kind")?;
        match kind.as_str() {
            "oi" => Ok(Scheme::Oi),
            "leave_join" => Ok(Scheme::LeaveJoin),
            "hybrid" => Ok(Scheme::Hybrid(value.field("policy")?)),
            other => Err(pfair_json::JsonError::new(format!(
                "unknown scheme kind `{other}`"
            ))),
        }
    }
}

/// Per-task state a [`HybridPolicy`] needs across events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct HybridTaskState {
    oi_events_in_window: u32,
    window_start: Slot,
    event_counter: u32,
}

impl pfair_json::ToJson for HybridTaskState {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([
            ("oi_events_in_window", self.oi_events_in_window.to_json()),
            ("window_start", self.window_start.to_json()),
            ("event_counter", self.event_counter.to_json()),
        ])
    }
}

impl pfair_json::FromJson for HybridTaskState {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        Ok(HybridTaskState {
            oi_events_in_window: value.field("oi_events_in_window")?,
            window_start: value.field("window_start")?,
            event_counter: value.field("event_counter")?,
        })
    }
}

impl pfair_json::ToJson for RuleSelector {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([
            ("scheme", self.scheme.to_json()),
            ("state", self.state.to_json()),
        ])
    }
}

impl pfair_json::FromJson for RuleSelector {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        Ok(RuleSelector {
            scheme: value.field("scheme")?,
            state: value.field("state")?,
        })
    }
}

/// Evaluates hybrid policies statefully per task.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleSelector {
    scheme: Scheme,
    state: Vec<HybridTaskState>,
}

impl RuleSelector {
    /// A selector for the given scheme over task ids `0..tasks`.
    pub fn new(scheme: Scheme, tasks: u32) -> RuleSelector {
        RuleSelector {
            scheme,
            // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
            state: vec![HybridTaskState::default(); tasks as usize],
        }
    }

    /// The scheme this selector implements.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Grows the per-task state table to cover ids `0..tasks` (no-op
    /// when already that big); new slots start in the default state.
    pub fn ensure_tasks(&mut self, tasks: u32) {
        // audit: allow(lossy-cast, u32→usize is lossless on the supported targets)
        let tasks = tasks as usize;
        if tasks > self.state.len() {
            self.state.resize(tasks, HybridTaskState::default());
        }
    }

    /// Number of per-task state slots (restore-time validation: must
    /// match the engine's task-table size).
    pub fn task_slots(&self) -> usize {
        self.state.len()
    }

    /// Chooses how to handle the event `task: old → new` at time `at`,
    /// given the task's current accumulated drift.
    pub fn choose(
        &mut self,
        task: TaskId,
        at: Slot,
        old: Rational,
        new: Rational,
        drift: Rational,
    ) -> RuleChoice {
        match &self.scheme {
            Scheme::Oi => RuleChoice::FineGrained,
            Scheme::LeaveJoin => RuleChoice::LeaveJoin,
            Scheme::Hybrid(policy) => {
                let st = &mut self.state[task.idx()]; // audit: allow(panic-reach, state table is sized to the task-set, idx is validated at admission)
                match policy {
                    HybridPolicy::MagnitudeThreshold(thr) => {
                        // |new − old| ≥ thr · old  (old > 0 for a reweight).
                        if (new - old).abs() >= *thr * old {
                            RuleChoice::FineGrained
                        } else {
                            RuleChoice::LeaveJoin
                        }
                    }
                    HybridPolicy::OiBudget { budget, window } => {
                        if at - st.window_start >= *window {
                            st.window_start = at - (at - st.window_start) % *window; // audit: allow(panic-reach, OiBudget windows are constructed positive)
                            st.oi_events_in_window = 0;
                        }
                        if st.oi_events_in_window < *budget {
                            st.oi_events_in_window += 1;
                            RuleChoice::FineGrained
                        } else {
                            RuleChoice::LeaveJoin
                        }
                    }
                    HybridPolicy::EveryNth(n) => {
                        let n = (*n).max(1);
                        st.event_counter += 1;
                        if st.event_counter.is_multiple_of(n) {
                            RuleChoice::FineGrained
                        } else {
                            RuleChoice::LeaveJoin
                        }
                    }
                    HybridPolicy::DriftFeedback(threshold) => {
                        if drift.abs() >= *threshold {
                            RuleChoice::FineGrained
                        } else {
                            RuleChoice::LeaveJoin
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    #[test]
    fn pure_schemes_are_constant() {
        let mut oi = RuleSelector::new(Scheme::Oi, 1);
        let mut lj = RuleSelector::new(Scheme::LeaveJoin, 1);
        for t in 0..5 {
            assert_eq!(
                oi.choose(TaskId(0), t, rat(1, 10), rat(1, 2), Rational::ZERO),
                RuleChoice::FineGrained
            );
            assert_eq!(
                lj.choose(TaskId(0), t, rat(1, 10), rat(1, 2), Rational::ZERO),
                RuleChoice::LeaveJoin
            );
        }
    }

    #[test]
    fn magnitude_threshold_splits_small_and_large() {
        let mut s = RuleSelector::new(
            Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(rat(1, 2))),
            1,
        );
        // 1/10 → 1/2 is a 4× change: fine-grained.
        assert_eq!(
            s.choose(TaskId(0), 0, rat(1, 10), rat(1, 2), Rational::ZERO),
            RuleChoice::FineGrained
        );
        // 1/10 → 11/100 is a 10% change: leave/join.
        assert_eq!(
            s.choose(TaskId(0), 1, rat(1, 10), rat(11, 100), Rational::ZERO),
            RuleChoice::LeaveJoin
        );
        // Decreases count by magnitude too.
        assert_eq!(
            s.choose(TaskId(0), 2, rat(1, 2), rat(1, 10), Rational::ZERO),
            RuleChoice::FineGrained
        );
    }

    #[test]
    fn oi_budget_caps_per_window() {
        let mut s = RuleSelector::new(
            Scheme::Hybrid(HybridPolicy::OiBudget {
                budget: 2,
                window: 10,
            }),
            1,
        );
        assert_eq!(
            s.choose(TaskId(0), 0, rat(1, 10), rat(1, 5), Rational::ZERO),
            RuleChoice::FineGrained
        );
        assert_eq!(
            s.choose(TaskId(0), 1, rat(1, 5), rat(1, 4), Rational::ZERO),
            RuleChoice::FineGrained
        );
        assert_eq!(
            s.choose(TaskId(0), 2, rat(1, 4), rat(1, 3), Rational::ZERO),
            RuleChoice::LeaveJoin
        );
        // New window: budget refreshes.
        assert_eq!(
            s.choose(TaskId(0), 10, rat(1, 3), rat(1, 2), Rational::ZERO),
            RuleChoice::FineGrained
        );
    }

    #[test]
    fn every_nth_interleaves() {
        let mut s = RuleSelector::new(Scheme::Hybrid(HybridPolicy::EveryNth(3)), 1);
        let choices: Vec<_> = (0..6)
            .map(|t| s.choose(TaskId(0), t, rat(1, 10), rat(1, 5), Rational::ZERO))
            .collect();
        assert_eq!(
            choices,
            vec![
                RuleChoice::LeaveJoin,
                RuleChoice::LeaveJoin,
                RuleChoice::FineGrained,
                RuleChoice::LeaveJoin,
                RuleChoice::LeaveJoin,
                RuleChoice::FineGrained,
            ]
        );
    }

    #[test]
    fn budget_state_is_per_task() {
        let mut s = RuleSelector::new(
            Scheme::Hybrid(HybridPolicy::OiBudget {
                budget: 1,
                window: 100,
            }),
            2,
        );
        assert_eq!(
            s.choose(TaskId(0), 0, rat(1, 10), rat(1, 5), Rational::ZERO),
            RuleChoice::FineGrained
        );
        assert_eq!(
            s.choose(TaskId(1), 0, rat(1, 10), rat(1, 5), Rational::ZERO),
            RuleChoice::FineGrained
        );
        assert_eq!(
            s.choose(TaskId(0), 1, rat(1, 5), rat(1, 4), Rational::ZERO),
            RuleChoice::LeaveJoin
        );
    }
}

#[cfg(test)]
mod feedback_tests {
    use super::*;
    use pfair_core::rational::rat;

    #[test]
    fn drift_feedback_switches_on_accumulated_error() {
        let mut s = RuleSelector::new(Scheme::Hybrid(HybridPolicy::DriftFeedback(rat(1, 1))), 1);
        // Under budget: cheap path.
        assert_eq!(
            s.choose(TaskId(0), 0, rat(1, 10), rat(1, 5), rat(1, 2)),
            RuleChoice::LeaveJoin
        );
        // Budget exhausted (|drift| ≥ 1): fine-grained path.
        assert_eq!(
            s.choose(TaskId(0), 1, rat(1, 5), rat(1, 4), rat(3, 2)),
            RuleChoice::FineGrained
        );
        // Negative drift counts by magnitude.
        assert_eq!(
            s.choose(TaskId(0), 2, rat(1, 4), rat(1, 5), rat(-3, 2)),
            RuleChoice::FineGrained
        );
    }
}
