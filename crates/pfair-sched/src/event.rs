//! Workload events: joins, leaves, and reweighting requests.
//!
//! A simulation consumes a time-ordered stream of events. Reweighting
//! requests carry the weight the task *wants*; the admission policy
//! (condition (W) policing, see [`crate::admission`]) may grant less.

use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_core::weight::Weight;

/// What happens to a task at an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The task joins the system with the given weight (its first
    /// "enacted weight change"). Subject to the join condition J.
    Join(Weight),
    /// The task asks to leave; the leave condition L may delay removal.
    Leave,
    /// The task *initiates* a weight change to the given weight at the
    /// event time; the reweighting rules decide when it is *enacted*.
    Reweight(Weight),
    /// Intra-sporadic separation: the task's next subtask release is
    /// postponed by the given number of slots (an increase of the IS
    /// offset θ). The instantaneous ideal owes the task nothing while it
    /// is between active subtasks.
    Delay(u32),
}

/// A timed event affecting one task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The slot boundary at which the event occurs.
    pub at: Slot,
    /// The affected task.
    pub task: TaskId,
    /// What happens.
    pub kind: EventKind,
}

impl pfair_json::ToJson for EventKind {
    fn to_json(&self) -> pfair_json::Json {
        match self {
            EventKind::Join(w) => pfair_json::obj([
                ("kind", "join".to_string().to_json()),
                ("weight", w.to_json()),
            ]),
            EventKind::Leave => pfair_json::obj([("kind", "leave".to_string().to_json())]),
            EventKind::Reweight(w) => pfair_json::obj([
                ("kind", "reweight".to_string().to_json()),
                ("weight", w.to_json()),
            ]),
            EventKind::Delay(by) => pfair_json::obj([
                ("kind", "delay".to_string().to_json()),
                ("by", by.to_json()),
            ]),
        }
    }
}

impl pfair_json::FromJson for EventKind {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        let kind: String = value.field("kind")?;
        match kind.as_str() {
            "join" => Ok(EventKind::Join(value.field("weight")?)),
            "leave" => Ok(EventKind::Leave),
            "reweight" => Ok(EventKind::Reweight(value.field("weight")?)),
            "delay" => Ok(EventKind::Delay(value.field("by")?)),
            other => Err(pfair_json::JsonError::new(format!(
                "unknown event kind `{other}`"
            ))),
        }
    }
}

impl pfair_json::ToJson for Event {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([
            ("at", self.at.to_json()),
            ("task", self.task.to_json()),
            ("event", self.kind.to_json()),
        ])
    }
}

impl pfair_json::FromJson for Event {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        Ok(Event {
            at: value.field("at")?,
            task: value.field("task")?,
            kind: value.field("event")?,
        })
    }
}

/// A complete workload: a set of tasks identified by dense ids `0..n`,
/// plus the events that drive them.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    events: Vec<Event>,
    max_task: u32,
}

impl Workload {
    /// An empty workload.
    pub fn new() -> Workload {
        Workload::default()
    }

    /// Adds an event (any order; events are sorted on build).
    pub fn push(&mut self, event: Event) -> &mut Self {
        self.max_task = self.max_task.max(event.task.0 + 1);
        self.events.push(event);
        self
    }

    /// Convenience: task `task` joins at `at` with weight `num/den`.
    pub fn join(&mut self, task: u32, at: Slot, num: i128, den: i128) -> &mut Self {
        self.push(Event {
            at,
            task: TaskId(task),
            kind: EventKind::Join(Weight::new(Rational::new(num, den))),
        })
    }

    /// Convenience: task `task` initiates a change to `num/den` at `at`.
    pub fn reweight(&mut self, task: u32, at: Slot, num: i128, den: i128) -> &mut Self {
        self.push(Event {
            at,
            task: TaskId(task),
            kind: EventKind::Reweight(Weight::new(Rational::new(num, den))),
        })
    }

    /// Convenience: task `task` asks to leave at `at`.
    pub fn leave(&mut self, task: u32, at: Slot) -> &mut Self {
        self.push(Event {
            at,
            task: TaskId(task),
            kind: EventKind::Leave,
        })
    }

    /// Convenience: postpone `task`'s next release by `by` slots at `at`.
    pub fn delay(&mut self, task: u32, at: Slot, by: u32) -> &mut Self {
        self.push(Event {
            at,
            task: TaskId(task),
            kind: EventKind::Delay(by),
        })
    }

    /// Number of distinct task ids referenced (ids must be dense from 0).
    pub fn task_count(&self) -> u32 {
        self.max_task
    }

    /// The events sorted by time (stable: same-slot events keep insertion
    /// order, so a workload can, e.g., make one task leave before another
    /// joins within a slot).
    pub fn sorted_events(&self) -> Vec<Event> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    #[test]
    fn builder_and_sorting() {
        let mut w = Workload::new();
        w.reweight(0, 10, 1, 2).join(0, 0, 3, 20).join(1, 5, 1, 4);
        let evs = w.sorted_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].at, 0);
        assert_eq!(evs[0].kind, EventKind::Join(Weight::new(rat(3, 20))));
        assert_eq!(evs[1].at, 5);
        assert_eq!(evs[2].at, 10);
        assert_eq!(w.task_count(), 2);
    }

    #[test]
    fn same_slot_events_keep_insertion_order() {
        let mut w = Workload::new();
        w.leave(0, 6).join(1, 6, 1, 14);
        let evs = w.sorted_events();
        assert_eq!(evs[0].kind, EventKind::Leave);
        assert!(matches!(evs[1].kind, EventKind::Join(_)));
    }
}
