//! System-level LAG analysis over recorded runs.
//!
//! `LAG(τ, t)` — the task set's total lag against the clairvoyant ideal
//! (paper Eqn (1)) — is the quantity the correctness proof manipulates:
//! a deadline miss forces `LAG(τ, t_d) = 1` (Lemma 5(c)), and LAG can
//! only increase across a slot with a *hole* (an idle processor,
//! Lemma 4). This module computes the LAG series and per-slot hole
//! counts from a history-enabled [`SimResult`], making those proof
//! quantities observable for any run.

use crate::trace::SimResult;
use pfair_core::rational::Rational;
use pfair_core::time::slot_index;

/// Per-slot system series derived from a run's histories.
#[derive(Clone, Debug)]
pub struct SystemSeries {
    /// `LAG(τ, t)` for `t = 0..=horizon` (length `horizon + 1`).
    pub lag: Vec<Rational>,
    /// Idle processors ("holes") in each slot (length `horizon`).
    pub holes: Vec<u32>,
    /// Scheduled quanta in each slot (length `horizon`).
    pub scheduled: Vec<u32>,
}

impl SystemSeries {
    /// The maximum LAG value reached.
    pub fn max_lag(&self) -> Rational {
        self.lag.iter().copied().max().unwrap_or(Rational::ZERO)
    }

    /// Slots across which LAG strictly increased.
    pub fn lag_increase_slots(&self) -> Vec<usize> {
        (0..self.lag.len().saturating_sub(1))
            .filter(|&t| self.lag[t + 1] > self.lag[t])
            .collect()
    }

    /// Lemma 4 as a predicate: every LAG increase happened across a slot
    /// with a hole.
    pub fn lemma4_holds(&self) -> bool {
        self.lag_increase_slots()
            .iter()
            .all(|&t| self.holes.get(t).is_some_and(|h| *h > 0))
    }
}

/// Computes the system series from a history-enabled result.
///
/// # Panics
/// Panics if histories were not recorded.
pub fn system_series(result: &SimResult) -> SystemSeries {
    let n = slot_index(result.horizon);
    let mut ideal = vec![Rational::ZERO; n];
    let mut scheduled = vec![0u32; n];
    for task in &result.tasks {
        let hist = task
            .history
            .as_ref()
            // audit: allow(panic, documented precondition: caller must enable record_history)
            .expect("system_series requires record_history");
        for (t, a) in hist.icsw_per_slot().iter().enumerate() {
            if t < n {
                ideal[t] += *a;
            }
        }
        for s in &hist.scheduled_slots {
            let idx = slot_index(*s);
            if idx < n {
                scheduled[idx] += 1;
            }
        }
    }
    let mut lag = Vec::with_capacity(n + 1);
    let mut acc = Rational::ZERO;
    lag.push(acc);
    for t in 0..n {
        acc += ideal[t] - Rational::from_int(i128::from(scheduled[t]));
        lag.push(acc);
    }
    let holes = scheduled
        .iter()
        .map(|s| result.processors.saturating_sub(*s))
        .collect();
    SystemSeries {
        lag,
        holes,
        scheduled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::event::Workload;
    use crate::workloads;
    use pfair_core::rational::rat;

    #[test]
    fn full_utilization_has_no_holes_and_bounded_lag() {
        let mut w = Workload::new();
        for i in 0..4 {
            w.join(i, 0, 1, 2);
        }
        let r = simulate(SimConfig::oi(2, 40).with_history(), &w);
        let s = system_series(&r);
        assert!(s.holes.iter().all(|h| *h == 0));
        assert!(s.max_lag() < rat(1, 1), "miss-free ⇒ LAG < 1 (Lemma 5)");
        assert!(s.lemma4_holds());
        assert_eq!(s.scheduled.iter().map(|x| u64::from(*x)).sum::<u64>(), 80);
    }

    #[test]
    fn underloaded_system_has_holes_but_lemma4_still_holds() {
        let mut w = Workload::new();
        w.join(0, 0, 1, 3);
        let r = simulate(SimConfig::oi(2, 30).with_history(), &w);
        let s = system_series(&r);
        assert!(s.holes.iter().any(|h| *h > 0));
        assert!(s.lemma4_holds());
    }

    #[test]
    fn reweighted_run_lag_stays_under_one() {
        let w = workloads::sawtooth(5, (1, 20), (1, 5), 40, 300);
        let r = simulate(SimConfig::oi(2, 300).with_history(), &w);
        assert!(r.is_miss_free());
        let s = system_series(&r);
        assert!(s.lemma4_holds());
        assert!(
            s.max_lag() < rat(1, 1),
            "a miss-free schedule keeps LAG below one quantum: {}",
            s.max_lag()
        );
    }
}
