//! Overhead accounting: the *efficiency* side of the
//! efficiency-versus-accuracy trade-off.
//!
//! The paper's concluding remarks weigh PD²-OI's precision against its
//! scheduling cost (`Ω(max(N, M log N))` to reweight `N` tasks at once,
//! versus `O(M log N)` for PD²-LJ) and against the migration/preemption
//! costs all Pfair schedulers incur. These counters make those costs
//! observable: every heap operation, halt, enactment, migration, and
//! preemption in a run is tallied, so the experiment harness can plot
//! accuracy (drift) against measured overhead for PD²-OI, PD²-LJ, and
//! the hybrids.

/// Event and data-structure operation tallies for one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Ready-queue insertions.
    pub heap_pushes: u64,
    /// Ready-queue removals (live and stale).
    pub heap_pops: u64,
    /// Removals that found a stale (halted/withdrawn) entry.
    pub stale_pops: u64,
    /// Reweighting events initiated.
    pub reweight_initiations: u64,
    /// Reweighting events enacted (≤ initiations; superseded requests
    /// are skipped).
    pub reweight_enactments: u64,
    /// Subtasks halted by rule O (or withdrawn by PD²-LJ's leave).
    pub halts: u64,
    /// Subtasks scheduled.
    pub scheduled_quanta: u64,
    /// Slots in which at least one processor idled ("holes").
    pub slots_with_holes: u64,
    /// Task migrations: a task's consecutive quanta ran on different
    /// processors.
    pub migrations: u64,
    /// Preemptions: a task ran in slot `t−1`, had unfinished work, and
    /// did not run in slot `t`.
    pub preemptions: u64,
    /// Reweighting requests rejected because they involved a heavy task
    /// (weight > 1/2) — the class whose reweighting rules the paper
    /// defers to the first author's dissertation.
    pub rejected_heavy_reweights: u64,
    /// Ready-queue compaction passes (stale-entry sweeps).
    pub compactions: u64,
    /// Stale entries removed by compaction before they could be popped.
    pub compacted_stale: u64,
}

impl pfair_json::ToJson for Counters {
    fn to_json(&self) -> pfair_json::Json {
        pfair_json::obj([
            ("heap_pushes", self.heap_pushes.to_json()),
            ("heap_pops", self.heap_pops.to_json()),
            ("stale_pops", self.stale_pops.to_json()),
            ("reweight_initiations", self.reweight_initiations.to_json()),
            ("reweight_enactments", self.reweight_enactments.to_json()),
            ("halts", self.halts.to_json()),
            ("scheduled_quanta", self.scheduled_quanta.to_json()),
            ("slots_with_holes", self.slots_with_holes.to_json()),
            ("migrations", self.migrations.to_json()),
            ("preemptions", self.preemptions.to_json()),
            (
                "rejected_heavy_reweights",
                self.rejected_heavy_reweights.to_json(),
            ),
            ("compactions", self.compactions.to_json()),
            ("compacted_stale", self.compacted_stale.to_json()),
        ])
    }
}

impl pfair_json::FromJson for Counters {
    fn from_json(value: &pfair_json::Json) -> Result<Self, pfair_json::JsonError> {
        Ok(Counters {
            heap_pushes: value.field("heap_pushes")?,
            heap_pops: value.field("heap_pops")?,
            stale_pops: value.field("stale_pops")?,
            reweight_initiations: value.field("reweight_initiations")?,
            reweight_enactments: value.field("reweight_enactments")?,
            halts: value.field("halts")?,
            scheduled_quanta: value.field("scheduled_quanta")?,
            slots_with_holes: value.field("slots_with_holes")?,
            migrations: value.field("migrations")?,
            preemptions: value.field("preemptions")?,
            rejected_heavy_reweights: value.field("rejected_heavy_reweights")?,
            // Absent in traces recorded before compaction existed.
            compactions: value
                .get("compactions")
                .map_or(Ok(0), pfair_json::FromJson::from_json)?,
            compacted_stale: value
                .get("compacted_stale")
                .map_or(Ok(0), pfair_json::FromJson::from_json)?,
        })
    }
}

impl Counters {
    /// Total priority-queue work, the dominant scheduling cost.
    pub fn heap_ops(&self) -> u64 {
        self.heap_pushes + self.heap_pops
    }

    /// The counters as a `pfair-obs` [`Registry`](pfair_obs::Registry),
    /// one counter per field under its field name. `Counters` stays the
    /// engine-facing view (a flat `Copy` struct the hot path bumps
    /// unconditionally); the registry form is the unified snapshot
    /// format shared with probe-collected metrics.
    pub fn to_registry(&self) -> pfair_obs::Registry {
        let mut reg = pfair_obs::Registry::new();
        for (name, value) in [
            ("heap_pushes", self.heap_pushes),
            ("heap_pops", self.heap_pops),
            ("stale_pops", self.stale_pops),
            ("reweight_initiations", self.reweight_initiations),
            ("reweight_enactments", self.reweight_enactments),
            ("halts", self.halts),
            ("scheduled_quanta", self.scheduled_quanta),
            ("slots_with_holes", self.slots_with_holes),
            ("migrations", self.migrations),
            ("preemptions", self.preemptions),
            ("rejected_heavy_reweights", self.rejected_heavy_reweights),
            ("compactions", self.compactions),
            ("compacted_stale", self.compacted_stale),
        ] {
            reg.inc(name, value);
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_ops_sums_pushes_and_pops() {
        let c = Counters {
            heap_pushes: 3,
            heap_pops: 5,
            ..Counters::default()
        };
        assert_eq!(c.heap_ops(), 8);
    }

    #[test]
    fn default_is_zeroed() {
        let c = Counters::default();
        assert_eq!(c.heap_ops(), 0);
        assert_eq!(c.migrations, 0);
    }

    #[test]
    fn registry_view_mirrors_every_field() {
        let c = Counters {
            heap_pushes: 1,
            heap_pops: 2,
            stale_pops: 3,
            reweight_initiations: 4,
            reweight_enactments: 5,
            halts: 6,
            scheduled_quanta: 7,
            slots_with_holes: 8,
            migrations: 9,
            preemptions: 10,
            rejected_heavy_reweights: 11,
            compactions: 12,
            compacted_stale: 13,
        };
        let reg = c.to_registry();
        assert_eq!(reg.counter("heap_pushes"), 1);
        assert_eq!(reg.counter("compacted_stale"), 13);
        assert_eq!(reg.counter_names().len(), 13);
    }
}
