//! # pfair-sched
//!
//! PD² Pfair multiprocessor scheduling with adaptive task reweighting:
//! the fine-grained PD²-OI rules (constant drift per weight change,
//! no deadline misses), the coarse-grained PD²-LJ leave/join rules, and
//! hybrid schemes trading the two — plus the baseline schedulers the
//! paper's lower-bound arguments use and EDF baselines from the
//! companion papers.
//!
//! The center of the crate is [`engine::Engine`]/[`engine::simulate`]:
//! a slot-by-slot simulation of an adaptable IS task system on `M`
//! processors, driven by a [`event::Workload`] of joins, leaves,
//! reweighting requests, and IS separations, producing a
//! [`trace::SimResult`] with exact (rational) drift, ideal-allocation,
//! and lag accounting. Everything a recorded run claims can be
//! re-checked from first principles by [`verify`], analyzed at the
//! system level by [`lag_analysis`], and rendered by [`render`] (ASCII)
//! or [`svg`]. [`workloads`] provides the synthetic generators the
//! benchmarks and stress tests share.
//!
//! ```
//! use pfair_sched::prelude::*;
//!
//! // Four processors: twenty weight-3/20 tasks, one of which jumps to
//! // weight 1/2 at time 10 under fine-grained PD²-OI reweighting.
//! let mut w = Workload::new();
//! for t in 0..20 {
//!     w.join(t, 0, 3, 20);
//! }
//! w.reweight(0, 10, 1, 2);
//! let result = simulate(SimConfig::oi(4, 100), &w);
//! assert!(result.is_miss_free());
//! assert!(result.max_abs_drift_delta() <= rat(2, 1));
//! ```

// Conventional-lint mirror of the audit's no-float-in-scheduling and
// no-panic-in-library invariants (types/methods listed in the root
// clippy.toml). Test code is exempt, as under audit.toml.
#![cfg_attr(not(test), warn(clippy::disallowed_types, clippy::disallowed_methods))]

pub mod admission;
pub mod calendar;
pub mod edf;
pub mod engine;
pub mod epdf_ps;
pub mod event;
pub mod lag_analysis;
pub mod overhead;
pub mod partitioned;
pub mod priority;
pub mod queue;
pub mod render;
pub mod reweight;
pub mod shard;
pub mod svg;
pub mod trace;
pub mod verify;
pub mod workloads;

/// The types most users need.
pub mod prelude {
    pub use crate::admission::AdmissionPolicy;
    pub use crate::engine::{simulate, simulate_with, Engine, SimConfig};
    pub use crate::event::{Event, EventKind, Workload};
    pub use crate::overhead::Counters;
    pub use crate::priority::TieBreak;
    pub use crate::reweight::{HybridPolicy, Scheme};
    pub use crate::shard::{ShardReport, ShardSet, ShardSpec};
    pub use crate::trace::{Miss, SimResult, TaskResult};
    pub use pfair_core::rational::{rat, Rational};
    pub use pfair_core::task::TaskId;
    pub use pfair_core::weight::Weight;
    pub use pfair_obs::{Fanout, MetricsProbe, NoopProbe, Probe, TraceRecorder};
}
