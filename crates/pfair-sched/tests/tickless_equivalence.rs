//! Tickless batching ≡ per-slot stepping at the engine level.
//!
//! The tickless driver (`SimConfig::tickless`, the default) advances
//! quiet spans — empty ready queue, no event due — in closed form, and
//! runs release-only slots through a reduced "quick" pipeline. Both
//! shortcuts reuse the oracle's own release/selection/promotion code
//! verbatim and report skipped spans through the span-level probe hooks
//! (which legacy probes replay per-slot and span-aware probes aggregate
//! exactly), so a batched run must be *bit-identical* to stepping every
//! slot: the rendered `SimResult`, every drift sample, every overhead
//! counter, and a `MetricsProbe`'s
//! full registry snapshot. Randomized AIS scripts across OI, LJ, and
//! hybrid schemes drive both paths through reweights (rules O/I/L/J),
//! IS delays (including past the calendar-ring window), rule-L leaves,
//! admission rejections, and saturated stretches where batching never
//! engages.

use pfair_json::ToJson;
use pfair_obs::{MetricsProbe, NoopProbe};
use pfair_sched::engine::{simulate, simulate_with, Engine, SimConfig};
use pfair_sched::event::Workload;
use pfair_sched::reweight::{HybridPolicy, Scheme};
use proptest::prelude::*;

const HORIZON: i64 = 160;

/// Light weights with small denominators keep windows short (dense,
/// batching rarely engages); large denominators open long windows
/// (sparse, batching dominates). Mix both.
fn arb_weight() -> impl Strategy<Value = (i128, i128)> {
    (2i128..=60).prop_flat_map(|den| (1i128..=(den / 2).max(1), Just(den)))
}

#[derive(Debug, Clone)]
struct TaskPlan {
    join_weight: (i128, i128),
    join_at: i64,
    reweights: Vec<(i64, (i128, i128))>,
    delay: Option<(i64, u32)>,
    leave_at: Option<i64>,
}

#[derive(Debug, Clone)]
struct Plan {
    processors: u32,
    tasks: Vec<TaskPlan>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    // Delays up to 600 slots push releases past the 512-slot calendar
    // window, exercising the overflow list and ring rotation.
    let delay = (0u32..=2, 1i64..HORIZON - 20, 1u32..600)
        .prop_map(|(on, at, by)| (on == 0).then_some((at, by)));
    let leave = (0u32..=2, 40i64..HORIZON - 5).prop_map(|(on, at)| (on == 0).then_some(at));
    let task = (
        arb_weight(),
        0i64..=30,
        prop::collection::vec(((1i64..HORIZON - 10), arb_weight()), 0..=3),
        delay,
        leave,
    )
        .prop_map(
            |(join_weight, join_at, reweights, delay, leave_at)| TaskPlan {
                join_weight,
                join_at,
                reweights,
                delay,
                leave_at,
            },
        );
    (1u32..=4, prop::collection::vec(task, 1..=8))
        .prop_map(|(processors, tasks)| Plan { processors, tasks })
}

fn workload_of(plan: &Plan) -> Workload {
    let mut w = Workload::new();
    for (i, t) in plan.tasks.iter().enumerate() {
        let id = u32::try_from(i).unwrap_or(0);
        w.join(id, t.join_at, t.join_weight.0, t.join_weight.1);
        for (at, wt) in &t.reweights {
            if *at > t.join_at {
                w.reweight(id, *at, wt.0, wt.1);
            }
        }
        if let Some((at, by)) = t.delay {
            if at > t.join_at {
                w.delay(id, at, by);
            }
        }
        if let Some(at) = t.leave_at {
            if at > t.join_at {
                w.leave(id, at);
            }
        }
    }
    w
}

/// Asserts a batched run is bit-identical to the per-slot oracle on the
/// same workload: rendered results, drift samples, counters, and the
/// metrics registry a probe accumulates from the replayed hook stream.
fn assert_tickless_matches_oracle(plan: &Plan, cfg: SimConfig) {
    let w = workload_of(plan);
    let (oracle, oracle_metrics) = simulate_with(cfg.clone().per_slot(), &w, MetricsProbe::new());
    // Busy-span driver under the no-op probe: whether or not any jump
    // lands on this script, the result must match.
    let busy = simulate(cfg.clone(), &w);
    assert_eq!(
        oracle.to_json().to_string_pretty(),
        busy.to_json().to_string_pretty(),
        "busy-span driver diverged from the oracle"
    );
    // `MetricsProbe` is span-aware, so this run may take quiet-span and
    // busy-span shortcuts — its registry must still match the per-slot
    // oracle's exactly.
    let (fast, fast_metrics) = simulate_with(cfg, &w, MetricsProbe::new());

    // One canonical rendering covers every field SimResult reports
    // (totals, drift, misses, counters, horizon).
    assert_eq!(
        oracle.to_json().to_string_pretty(),
        fast.to_json().to_string_pretty(),
        "rendered SimResult diverged"
    );
    // Field-level spot checks keep failures readable.
    assert_eq!(&oracle.counters, &fast.counters);
    assert_eq!(&oracle.misses, &fast.misses);
    for (o, f) in oracle.tasks.iter().zip(fast.tasks.iter()) {
        assert_eq!(o.scheduled_count, f.scheduled_count, "task {}", o.id);
        assert_eq!(o.ps_total, f.ps_total, "I_PS of task {}", o.id);
        assert_eq!(o.isw_total, f.isw_total, "I_SW of task {}", o.id);
        assert_eq!(o.icsw_total, f.icsw_total, "I_CSW of task {}", o.id);
        assert_eq!(
            o.drift.samples(),
            f.drift.samples(),
            "drift samples of task {}",
            o.id
        );
    }
    // The probe saw the same hook stream, slot replay included.
    assert_eq!(
        oracle_metrics.registry().snapshot_text(),
        fast_metrics.registry().snapshot_text(),
        "metrics snapshots diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PD²-OI: rules O and I park enactments on the calendar ring;
    /// spans must split exactly at every enactment boundary.
    #[test]
    fn oi_tickless_matches_per_slot(plan in arb_plan()) {
        assert_tickless_matches_oracle(&plan, SimConfig::oi(plan.processors, HORIZON));
    }

    /// PD²-LJ: withdrawals strand stale queue entries and rule-L
    /// departures land on the leave ring; batching must stay
    /// conservative around both.
    #[test]
    fn lj_tickless_matches_per_slot(plan in arb_plan()) {
        assert_tickless_matches_oracle(&plan, SimConfig::leave_join(plan.processors, HORIZON));
    }

    /// Hybrid policies switch schemes mid-run; quiet-span detection
    /// must hold across the switches.
    #[test]
    fn hybrid_tickless_matches_per_slot(plan in arb_plan(), nth in 1u32..4) {
        let cfg = SimConfig::oi(plan.processors, HORIZON)
            .with_scheme(Scheme::Hybrid(HybridPolicy::EveryNth(nth)));
        assert_tickless_matches_oracle(&plan, cfg);
    }
}

// ---------------------------------------------------------------------
// Busy-span batching: saturated runs where quiet-span skipping never
// fires and the steady busy-span batcher must carry the horizon.
// ---------------------------------------------------------------------

/// Horizon for the saturated scripts: events stop before
/// [`SAT_EVENT_CUTOFF`], leaving a long periodic tail where the batcher
/// is guaranteed at least one whole verified period plus a jump even
/// after maximum verification backoff.
const SAT_HORIZON: i64 = 400;
/// All workload events land strictly before this slot.
const SAT_EVENT_CUTOFF: i64 = 120;

/// One randomized saturated task: a *final* weight in twelfths
/// (denominators {4, 6, 12} before reduction, all light, so every
/// per-task period divides 12 and the busy-span period is at most 12),
/// an optional lower *join* weight reached by reweighting **up** before
/// the cutoff, and an optional short IS delay. Upward reweights under a
/// policing admission never get rejected here — the final weights sum
/// to exactly `M` — so the tail always lands saturated, whatever the
/// scheme does in between (rules O/I under OI, leave+rejoin under LJ).
fn arb_sat_task() -> impl Strategy<Value = (i128, TaskPlan)> {
    let delay = (0u32..=2, 1i64..SAT_EVENT_CUTOFF - 50, 1u32..40)
        .prop_map(|(on, at, by)| (on == 0).then_some((at, by)));
    (
        1i128..=6,               // final weight, twelfths
        1i128..=6,               // join weight, twelfths (clamped to final below)
        0i64..=20,               // join slot
        21i64..SAT_EVENT_CUTOFF, // up-reweight slot
        delay,
    )
        .prop_map(|(fin, join, join_at, up_at, delay)| {
            let join = join.min(fin);
            let reweights = if join < fin {
                vec![(up_at, (fin, 12))]
            } else {
                Vec::new()
            };
            (
                fin,
                TaskPlan {
                    join_weight: (join, 12),
                    join_at,
                    reweights,
                    delay,
                    leave_at: None,
                },
            )
        })
}

/// A saturated plan: random up-reweighting tasks, then deterministic
/// static filler tasks that close the remaining capacity exactly
/// (every weight is a multiple of 1/12, so the spare always clears in
/// units of {6, 3, 2, 1}/12). All events land before the cutoff and no
/// task leaves, so from the cutoff to the horizon the system is exactly
/// saturated and periodic — the regime the busy-span batcher exists
/// for.
fn arb_saturated_plan() -> impl Strategy<Value = Plan> {
    (2u32..=4, prop::collection::vec(arb_sat_task(), 1..=6)).prop_map(|(processors, tasks)| {
        let target = i128::from(processors) * 12;
        let mut twelfths: i128 = 0;
        let mut plan = Plan {
            processors,
            tasks: Vec::new(),
        };
        // Random tasks first, dropped once their final weights would
        // overfill the system.
        for (fin, task) in tasks {
            if twelfths + fin <= target {
                twelfths += fin;
                plan.tasks.push(task);
            }
        }
        for (num, den, unit) in [(1i128, 2i128, 6i128), (1, 4, 3), (1, 6, 2), (1, 12, 1)] {
            while twelfths + unit <= target {
                plan.tasks.push(TaskPlan {
                    join_weight: (num, den),
                    join_at: 0,
                    reweights: Vec::new(),
                    delay: None,
                    leave_at: None,
                });
                twelfths += unit;
            }
        }
        plan
    })
}

/// Asserts the three drivers agree bit-for-bit on a saturated script —
/// busy-span batching (the default), plain tickless, and the per-slot
/// oracle — and that the batcher actually jumped (the tail is periodic
/// with period ≤ 12, so at least one verified span must land even after
/// maximum verification backoff). The batched run carries a
/// span-aware `MetricsProbe`: batching must still engage under it
/// (`SPAN_AWARE` gating, not a no-op check), and the registry it
/// rebuilds from span digests must be bit-identical to the one the
/// per-slot oracle accumulates hook by hook.
fn assert_busy_span_matches_oracle(plan: &Plan, cfg: SimConfig) {
    let w = workload_of(plan);
    let mut engine = Engine::with_probe(cfg.clone(), &w, MetricsProbe::new());
    engine.run();
    let jumps = engine.busy_span_jumps();
    let (fast, fast_metrics) = engine.finish_with_probe();
    let tickless = simulate(cfg.clone().without_busy_span(), &w);
    let (oracle, oracle_metrics) = simulate_with(cfg.per_slot(), &w, MetricsProbe::new());
    assert!(
        jumps > 0,
        "busy-span batching never engaged on a saturated periodic tail"
    );
    let rendered = fast.to_json().to_string_pretty();
    assert_eq!(
        rendered,
        tickless.to_json().to_string_pretty(),
        "busy-span vs tickless diverged"
    );
    assert_eq!(
        rendered,
        oracle.to_json().to_string_pretty(),
        "busy-span vs per-slot oracle diverged"
    );
    assert_eq!(
        oracle_metrics.registry().snapshot_text(),
        fast_metrics.registry().snapshot_text(),
        "span-aggregated metrics diverged from the per-slot oracle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PD²-OI, saturated: rules O and I fire inside the event window,
    /// then the batcher owns the periodic tail.
    #[test]
    fn oi_busy_span_matches_oracle(plan in arb_saturated_plan()) {
        assert_busy_span_matches_oracle(&plan, SimConfig::oi(plan.processors, SAT_HORIZON));
    }

    /// PD²-LJ, saturated: stale queue entries stranded by withdrawals
    /// must be classified (and translated) by the span verifier.
    #[test]
    fn lj_busy_span_matches_oracle(plan in arb_saturated_plan()) {
        assert_busy_span_matches_oracle(
            &plan,
            SimConfig::leave_join(plan.processors, SAT_HORIZON),
        );
    }

    /// Hybrid, saturated: the selector's request counters must be part
    /// of the verified fixed point.
    #[test]
    fn hybrid_busy_span_matches_oracle(plan in arb_saturated_plan(), nth in 1u32..4) {
        let cfg = SimConfig::oi(plan.processors, SAT_HORIZON)
            .with_scheme(Scheme::Hybrid(HybridPolicy::EveryNth(nth)));
        assert_busy_span_matches_oracle(&plan, cfg);
    }

    /// A snapshot taken in the middle of a busy span restores to the
    /// identical trajectory: `snapshot_at` steps the per-slot pipeline
    /// to an arbitrary slot (usually interior to a span the batcher
    /// would have jumped over), and the resumed run — which re-arms
    /// batching from scratch — must render byte-identically to the
    /// uninterrupted batched run.
    #[test]
    fn mid_busy_span_snapshot_restores_identically(
        plan in arb_saturated_plan(),
        cut in 150i64..SAT_HORIZON - 10,
    ) {
        let cfg = SimConfig::oi(plan.processors, SAT_HORIZON);
        let w = workload_of(&plan);
        let uninterrupted = {
            let mut e = Engine::new(cfg.clone(), &w);
            e.run();
            prop_assert!(e.busy_span_jumps() > 0);
            e.finish()
        };
        let snap = Engine::new(cfg, &w)
            .snapshot_at(cut)
            .expect("snapshot at a slot boundary");
        let mut resumed = Engine::restore(snap, NoopProbe).expect("restore");
        resumed.run();
        let resumed = resumed.finish();
        prop_assert_eq!(
            uninterrupted.to_json().to_string_pretty(),
            resumed.to_json().to_string_pretty(),
            "snapshot/restore diverged from the uninterrupted busy-span run"
        );
    }
}

/// A deterministic long-horizon whisper-style run: sparse weights open
/// hundreds-of-slots quiet spans, rotating the calendar ring many times
/// and mixing quick release slots with full boundary steps.
#[test]
fn long_sparse_run_is_bit_identical() {
    let mut w = Workload::new();
    for i in 0..6u32 {
        w.join(i, i64::from(i) * 3, 1, 100 + i128::from(i) * 7);
    }
    w.reweight(0, 400, 1, 80);
    w.reweight(1, 1_000, 1, 150);
    w.delay(2, 500, 700); // past the ring window: overflow + rotation
    w.leave(3, 2_000);
    w.reweight(4, 3_000, 1, 90);
    let cfg = SimConfig::oi(4, 5_000);
    let (oracle, om) = simulate_with(cfg.clone().per_slot(), &w, MetricsProbe::new());
    let (fast, fm) = simulate_with(cfg, &w, MetricsProbe::new());
    assert_eq!(
        oracle.to_json().to_string_pretty(),
        fast.to_json().to_string_pretty()
    );
    assert_eq!(om.registry().snapshot_text(), fm.registry().snapshot_text());
}
