//! Tickless batching ≡ per-slot stepping at the engine level.
//!
//! The tickless driver (`SimConfig::tickless`, the default) advances
//! quiet spans — empty ready queue, no event due — in closed form, and
//! runs release-only slots through a reduced "quick" pipeline. Both
//! shortcuts reuse the oracle's own release/selection/promotion code
//! verbatim and replay per-slot probe hooks, so a batched run must be
//! *bit-identical* to stepping every slot: the rendered `SimResult`,
//! every drift sample, every overhead counter, and a `MetricsProbe`'s
//! full registry snapshot. Randomized AIS scripts across OI, LJ, and
//! hybrid schemes drive both paths through reweights (rules O/I/L/J),
//! IS delays (including past the calendar-ring window), rule-L leaves,
//! admission rejections, and saturated stretches where batching never
//! engages.

use pfair_json::ToJson;
use pfair_obs::MetricsProbe;
use pfair_sched::engine::{simulate_with, SimConfig};
use pfair_sched::event::Workload;
use pfair_sched::reweight::{HybridPolicy, Scheme};
use proptest::prelude::*;

const HORIZON: i64 = 160;

/// Light weights with small denominators keep windows short (dense,
/// batching rarely engages); large denominators open long windows
/// (sparse, batching dominates). Mix both.
fn arb_weight() -> impl Strategy<Value = (i128, i128)> {
    (2i128..=60).prop_flat_map(|den| (1i128..=(den / 2).max(1), Just(den)))
}

#[derive(Debug, Clone)]
struct TaskPlan {
    join_weight: (i128, i128),
    join_at: i64,
    reweights: Vec<(i64, (i128, i128))>,
    delay: Option<(i64, u32)>,
    leave_at: Option<i64>,
}

#[derive(Debug, Clone)]
struct Plan {
    processors: u32,
    tasks: Vec<TaskPlan>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    // Delays up to 600 slots push releases past the 512-slot calendar
    // window, exercising the overflow list and ring rotation.
    let delay = (0u32..=2, 1i64..HORIZON - 20, 1u32..600)
        .prop_map(|(on, at, by)| (on == 0).then_some((at, by)));
    let leave = (0u32..=2, 40i64..HORIZON - 5).prop_map(|(on, at)| (on == 0).then_some(at));
    let task = (
        arb_weight(),
        0i64..=30,
        prop::collection::vec(((1i64..HORIZON - 10), arb_weight()), 0..=3),
        delay,
        leave,
    )
        .prop_map(
            |(join_weight, join_at, reweights, delay, leave_at)| TaskPlan {
                join_weight,
                join_at,
                reweights,
                delay,
                leave_at,
            },
        );
    (1u32..=4, prop::collection::vec(task, 1..=8))
        .prop_map(|(processors, tasks)| Plan { processors, tasks })
}

fn workload_of(plan: &Plan) -> Workload {
    let mut w = Workload::new();
    for (i, t) in plan.tasks.iter().enumerate() {
        let id = u32::try_from(i).unwrap_or(0);
        w.join(id, t.join_at, t.join_weight.0, t.join_weight.1);
        for (at, wt) in &t.reweights {
            if *at > t.join_at {
                w.reweight(id, *at, wt.0, wt.1);
            }
        }
        if let Some((at, by)) = t.delay {
            if at > t.join_at {
                w.delay(id, at, by);
            }
        }
        if let Some(at) = t.leave_at {
            if at > t.join_at {
                w.leave(id, at);
            }
        }
    }
    w
}

/// Asserts a batched run is bit-identical to the per-slot oracle on the
/// same workload: rendered results, drift samples, counters, and the
/// metrics registry a probe accumulates from the replayed hook stream.
fn assert_tickless_matches_oracle(plan: &Plan, cfg: SimConfig) {
    let w = workload_of(plan);
    let (oracle, oracle_metrics) = simulate_with(cfg.clone().per_slot(), &w, MetricsProbe::new());
    let (fast, fast_metrics) = simulate_with(cfg, &w, MetricsProbe::new());

    // One canonical rendering covers every field SimResult reports
    // (totals, drift, misses, counters, horizon).
    assert_eq!(
        oracle.to_json().to_string_pretty(),
        fast.to_json().to_string_pretty(),
        "rendered SimResult diverged"
    );
    // Field-level spot checks keep failures readable.
    assert_eq!(&oracle.counters, &fast.counters);
    assert_eq!(&oracle.misses, &fast.misses);
    for (o, f) in oracle.tasks.iter().zip(fast.tasks.iter()) {
        assert_eq!(o.scheduled_count, f.scheduled_count, "task {}", o.id);
        assert_eq!(o.ps_total, f.ps_total, "I_PS of task {}", o.id);
        assert_eq!(o.isw_total, f.isw_total, "I_SW of task {}", o.id);
        assert_eq!(o.icsw_total, f.icsw_total, "I_CSW of task {}", o.id);
        assert_eq!(
            o.drift.samples(),
            f.drift.samples(),
            "drift samples of task {}",
            o.id
        );
    }
    // The probe saw the same hook stream, slot replay included.
    assert_eq!(
        oracle_metrics.registry().snapshot_text(),
        fast_metrics.registry().snapshot_text(),
        "metrics snapshots diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PD²-OI: rules O and I park enactments on the calendar ring;
    /// spans must split exactly at every enactment boundary.
    #[test]
    fn oi_tickless_matches_per_slot(plan in arb_plan()) {
        assert_tickless_matches_oracle(&plan, SimConfig::oi(plan.processors, HORIZON));
    }

    /// PD²-LJ: withdrawals strand stale queue entries and rule-L
    /// departures land on the leave ring; batching must stay
    /// conservative around both.
    #[test]
    fn lj_tickless_matches_per_slot(plan in arb_plan()) {
        assert_tickless_matches_oracle(&plan, SimConfig::leave_join(plan.processors, HORIZON));
    }

    /// Hybrid policies switch schemes mid-run; quiet-span detection
    /// must hold across the switches.
    #[test]
    fn hybrid_tickless_matches_per_slot(plan in arb_plan(), nth in 1u32..4) {
        let cfg = SimConfig::oi(plan.processors, HORIZON)
            .with_scheme(Scheme::Hybrid(HybridPolicy::EveryNth(nth)));
        assert_tickless_matches_oracle(&plan, cfg);
    }
}

/// A deterministic long-horizon whisper-style run: sparse weights open
/// hundreds-of-slots quiet spans, rotating the calendar ring many times
/// and mixing quick release slots with full boundary steps.
#[test]
fn long_sparse_run_is_bit_identical() {
    let mut w = Workload::new();
    for i in 0..6u32 {
        w.join(i, i64::from(i) * 3, 1, 100 + i128::from(i) * 7);
    }
    w.reweight(0, 400, 1, 80);
    w.reweight(1, 1_000, 1, 150);
    w.delay(2, 500, 700); // past the ring window: overflow + rotation
    w.leave(3, 2_000);
    w.reweight(4, 3_000, 1, 90);
    let cfg = SimConfig::oi(4, 5_000);
    let (oracle, om) = simulate_with(cfg.clone().per_slot(), &w, MetricsProbe::new());
    let (fast, fm) = simulate_with(cfg, &w, MetricsProbe::new());
    assert_eq!(
        oracle.to_json().to_string_pretty(),
        fast.to_json().to_string_pretty()
    );
    assert_eq!(om.registry().snapshot_text(), fm.registry().snapshot_text());
}
