//! Property-based tests of the paper's theorems over randomized
//! adaptable task systems:
//!
//! * **Theorem 2** — under PD²-OI with condition-(W) policing, no
//!   subtask ever misses its deadline, no matter the reweighting
//!   pattern.
//! * **Theorem 5** — the per-event drift under PD²-OI is at most 2 in
//!   absolute value.
//! * **Theorem 1** — PD²-LJ (leave/join) also never misses.
//! * The Pfair lag window: the actual schedule stays within one quantum
//!   of `I_CSW` for every task at every time.
//! * **Property (C)** — superseding a pending reweighting event never
//!   delays the task's next enactment (bursts of initiations still
//!   converge, and everything above still holds).

use pfair_core::rational::{rat, Rational};
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::event::Workload;
use pfair_sched::priority::TieBreak;
use pfair_sched::reweight::{HybridPolicy, Scheme};
use pfair_sched::verify::verify;
use proptest::prelude::*;

const HORIZON: i64 = 120;

/// A random light weight `num/den ≤ 1/2` with a modest denominator.
fn arb_weight() -> impl Strategy<Value = (i128, i128)> {
    (2i128..=24).prop_flat_map(|den| (1i128..=(den / 2).max(1), Just(den)))
}

/// A random reweighting plan: per task, a join weight and up to three
/// (time, weight) requests.
#[derive(Debug, Clone)]
struct Plan {
    processors: u32,
    tasks: Vec<TaskPlan>,
}

#[derive(Debug, Clone)]
struct TaskPlan {
    join_weight: (i128, i128),
    join_at: i64,
    reweights: Vec<(i64, (i128, i128))>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    let task = (
        arb_weight(),
        0i64..=30,
        prop::collection::vec(((1i64..HORIZON - 10), arb_weight()), 0..=3),
    )
        .prop_map(|(join_weight, join_at, reweights)| TaskPlan {
            join_weight,
            join_at,
            reweights,
        });
    (1u32..=4, prop::collection::vec(task, 1..=10))
        .prop_map(|(processors, tasks)| Plan { processors, tasks })
}

fn workload_of(plan: &Plan) -> Workload {
    let mut w = Workload::new();
    for (i, t) in plan.tasks.iter().enumerate() {
        w.join(i as u32, t.join_at, t.join_weight.0, t.join_weight.1);
        for (at, wt) in &t.reweights {
            if *at > t.join_at {
                w.reweight(i as u32, *at, wt.0, wt.1);
            }
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 2 + Theorem 5 under PD²-OI.
    #[test]
    fn oi_never_misses_and_drift_is_fine_grained(plan in arb_plan()) {
        let w = workload_of(&plan);
        let cfg = SimConfig::oi(plan.processors, HORIZON).with_history();
        let r = simulate(cfg, &w);
        prop_assert!(r.is_miss_free(), "misses: {:?}", r.misses);
        prop_assert!(
            r.max_abs_drift_delta() <= rat(2, 1),
            "per-event drift {} exceeds 2",
            r.max_abs_drift_delta()
        );
    }

    /// Full independent verification under PD²-OI: window structure
    /// (Eqns (2)–(4)), schedule sanity, processor capacity, miss
    /// reporting, and the Pfair lag window — re-derived from the trace
    /// by `pfair_sched::verify`, not trusted from the engine.
    #[test]
    fn oi_runs_verify_independently(plan in arb_plan()) {
        let w = workload_of(&plan);
        let cfg = SimConfig::oi(plan.processors, HORIZON).with_history();
        let r = simulate(cfg, &w);
        let violations = verify(&r);
        prop_assert!(
            violations.is_empty(),
            "violations: {:?}",
            violations.iter().map(std::string::ToString::to_string).collect::<Vec<_>>()
        );
    }

    /// The verifier also certifies PD²-LJ and hybrid runs.
    #[test]
    fn lj_and_hybrid_runs_verify_independently(plan in arb_plan()) {
        for scheme in [
            Scheme::LeaveJoin,
            Scheme::Hybrid(HybridPolicy::EveryNth(2)),
        ] {
            let w = workload_of(&plan);
            let cfg = SimConfig::oi(plan.processors, HORIZON)
                .with_scheme(scheme)
                .with_history();
            let r = simulate(cfg, &w);
            let violations = verify(&r);
            prop_assert!(
                violations.is_empty(),
                "violations: {:?}",
                violations.iter().map(std::string::ToString::to_string).collect::<Vec<_>>()
            );
        }
    }

    /// Theorem 1: leave/join reweighting also never misses.
    #[test]
    fn lj_never_misses(plan in arb_plan()) {
        let w = workload_of(&plan);
        let cfg = SimConfig::leave_join(plan.processors, HORIZON);
        let r = simulate(cfg, &w);
        prop_assert!(r.is_miss_free(), "misses: {:?}", r.misses);
    }

    /// Hybrid schemes are also miss-free (each event takes one of two
    /// correct paths) and their accuracy sits between the pure schemes'
    /// worst cases.
    #[test]
    fn hybrids_never_miss(plan in arb_plan(), budget in 1u32..4, nth in 1u32..5) {
        let w = workload_of(&plan);
        for scheme in [
            Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(rat(1, 2))),
            Scheme::Hybrid(HybridPolicy::OiBudget { budget, window: 20 }),
            Scheme::Hybrid(HybridPolicy::EveryNth(nth)),
            Scheme::Hybrid(HybridPolicy::DriftFeedback(rat(1, 1))),
        ] {
            let cfg = SimConfig::oi(plan.processors, HORIZON).with_scheme(scheme.clone());
            let r = simulate(cfg, &w);
            prop_assert!(r.is_miss_free(), "{:?} misses: {:?}", scheme, r.misses);
        }
    }

    /// Property (C): bursts of superseding initiations in consecutive
    /// slots still converge — the engine never deadlocks a task (its
    /// subtask releases resume) and correctness is untouched.
    #[test]
    fn superseding_bursts_converge(
        seedw in arb_weight(),
        burst_start in 1i64..40,
        burst in prop::collection::vec(arb_weight(), 2..=6),
    ) {
        let mut w = Workload::new();
        w.join(0, 0, seedw.0, seedw.1);
        w.join(1, 0, 1, 3);
        for (k, wt) in burst.iter().enumerate() {
            w.reweight(0, burst_start + k as i64, wt.0, wt.1);
        }
        let cfg = SimConfig::oi(2, HORIZON).with_history();
        let r = simulate(cfg, &w);
        prop_assert!(r.is_miss_free(), "misses: {:?}", r.misses);
        prop_assert!(r.max_abs_drift_delta() <= rat(2, 1));
        // Releases resumed after the burst: the task keeps being
        // scheduled through the tail of the run.
        let hist = r.tasks[0].history.as_ref().unwrap();
        let last_scheduled = hist.scheduled_slots.last().copied().unwrap_or(0);
        prop_assert!(
            last_scheduled > burst_start + burst.len() as i64,
            "task starved after burst: last scheduled at {}",
            last_scheduled
        );
    }

    /// Tie-break choice never affects correctness, only which of two
    /// equal-priority subtasks runs first.
    #[test]
    fn tie_breaks_preserve_correctness(plan in arb_plan()) {
        let w = workload_of(&plan);
        for tb in [TieBreak::TaskIdAsc, TieBreak::TaskIdDesc] {
            let cfg = SimConfig::oi(plan.processors, HORIZON).with_tie_break(tb);
            let r = simulate(cfg, &w);
            prop_assert!(r.is_miss_free());
        }
    }

    /// Work conservation: in every slot, the number of scheduled quanta
    /// equals min(M, eligible work) — verified indirectly: total
    /// scheduled quanta never falls below the ideal total minus one
    /// quantum per task (no systematic starvation).
    #[test]
    fn no_systematic_starvation(plan in arb_plan()) {
        let w = workload_of(&plan);
        let cfg = SimConfig::oi(plan.processors, HORIZON);
        let r = simulate(cfg, &w);
        for task in &r.tasks {
            let floor = task.icsw_total - Rational::ONE;
            prop_assert!(
                Rational::from_int(i128::from(task.scheduled_count)) > floor,
                "{} got {} quanta, ideal {}",
                task.id, task.scheduled_count, task.icsw_total
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 4 of the appendix: if LAG(τ, t) < LAG(τ, t+1) — the task
    /// set as a whole fell further behind its clairvoyant ideal across
    /// slot t — then slot t had a hole (an idle processor). Checked
    /// from raw history: per-slot I_CSW minus per-slot scheduled counts.
    #[test]
    fn lemma4_lag_increases_only_across_holes(plan in arb_plan()) {
        let w = workload_of(&plan);
        let cfg = SimConfig::oi(plan.processors, HORIZON).with_history();
        let r = simulate(cfg, &w);
        prop_assert!(r.is_miss_free());
        // Per-slot totals across the task set.
        let mut ideal = vec![Rational::ZERO; HORIZON as usize];
        let mut actual = vec![0u32; HORIZON as usize];
        for task in &r.tasks {
            let hist = task.history.as_ref().unwrap();
            for (t, a) in hist.icsw_per_slot().iter().enumerate() {
                ideal[t] += *a;
            }
            for s in &hist.scheduled_slots {
                actual[*s as usize] += 1;
            }
        }
        let mut lag = Rational::ZERO;
        for t in 0..HORIZON as usize {
            let next = lag + ideal[t] - Rational::from_int(i128::from(actual[t]));
            if next > lag {
                prop_assert!(
                    actual[t] < plan.processors,
                    "LAG rose across slot {} ({} -> {}) with no hole ({} of {} CPUs busy)",
                    t, lag, next, actual[t], plan.processors
                );
            }
            lag = next;
        }
    }
}
