//! Executable reproductions of the paper's worked examples: Fig. 4
//! (one-processor PD² with a rule-O halt), Fig. 6(a)–(d) (the rule O/I
//! walkthroughs with their exact drift values), Fig. 8 (PD²-LJ's
//! unbounded drift, Theorem 3), and Fig. 9 (the EPDF lower bound,
//! Theorem 4). Every asserted number below appears in the paper's text
//! or figure labels.

use pfair_core::rational::rat;
use pfair_core::task::TaskId;
use pfair_sched::admission::AdmissionPolicy;
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::epdf_ps::run_projected_epdf;
use pfair_sched::event::Workload;
use pfair_sched::priority::TieBreak;
use pfair_sched::trace::SimResult;

/// Ties resolved in favor of the given task, everything else by id.
fn favoring(task: u32) -> TieBreak {
    TieBreak::Ranked(vec![(TaskId(task), 0)])
}

/// Ties resolved *against* the given task (all other tasks outrank it).
fn disfavoring(task: u32, total: u32) -> TieBreak {
    TieBreak::Ranked(
        (0..total)
            .filter(|t| *t != task)
            .map(|t| (TaskId(t), 0))
            .chain(std::iter::once((TaskId(task), 1)))
            .collect(),
    )
}

/// Fig. 4: one processor; T of weight 2/5 and U of weight 2/5 that
/// increases to 1/2 at time 3 by halting U_2.
#[test]
fn fig4_one_processor_halt() {
    let mut w = Workload::new();
    w.join(0, 0, 2, 5); // T
    w.join(1, 0, 2, 5); // U
    w.reweight(1, 3, 1, 2);
    let cfg = SimConfig::oi(1, 30)
        .with_tie_break(TieBreak::TaskIdAsc) // T favored, as in the figure
        .with_admission(AdmissionPolicy::Trusting)
        .with_history();
    let r = simulate(cfg, &w);
    assert!(r.is_miss_free());

    let u = r.task(TaskId(1)).history.as_ref().unwrap();
    // "T_1 completes at time 1 … U_1 does not complete until time 2."
    let t_hist = r.task(TaskId(0)).history.as_ref().unwrap();
    assert_eq!(t_hist.subtasks[0].scheduled_at, Some(0));
    assert_eq!(u.subtasks[0].scheduled_at, Some(1));
    // "U_2 is halted at time 3 … it is complete at time 3 even though it
    // is never scheduled."
    assert_eq!(u.subtasks[1].index, 2);
    assert_eq!(u.subtasks[1].halted_at, Some(3));
    assert_eq!(u.subtasks[1].scheduled_at, None);
    // The weight-1/2 era opens at max(t_c, D(I_SW, U_1) + b(U_1)) = 4.
    let era = u
        .subtasks
        .iter()
        .find(|s| s.era_first && s.index > 1)
        .unwrap();
    assert_eq!(era.window.release, 4);
    assert_eq!(era.window.deadline, 6); // fresh 1/2 task: window length 2
}

/// The Fig. 6 base system: 19 weight-3/20 tasks (ids 1..=19) plus task
/// T (id 0) on four processors.
fn fig6_base(t_weight: (i128, i128)) -> Workload {
    let mut w = Workload::new();
    w.join(0, 0, t_weight.0, t_weight.1); // T
    for i in 1..=19 {
        w.join(i, 0, 3, 20);
    }
    w
}

/// Fig. 6(a): T (3/20) leaves at time 8 (the earliest rule L allows:
/// d(T_1) + b(T_1) = 7 + 1) and a weight-1/2 task U joins at 10.
#[test]
fn fig6a_leave_join() {
    let mut w = fig6_base((3, 20));
    w.leave(0, 7); // initiated before 8; rule L defers the leave to 8
    w.join(20, 10, 1, 2); // U
    let cfg = SimConfig::oi(4, 40)
        .with_tie_break(disfavoring(0, 21))
        .with_admission(AdmissionPolicy::Trusting)
        .with_history();
    let r = simulate(cfg, &w);
    assert!(r.is_miss_free());
    let t = r.task(TaskId(0)).history.as_ref().unwrap();
    // T_1 ran; T_2 (released at 6) was withdrawn, never scheduled.
    assert!(t.subtasks[0].scheduled_at.is_some());
    assert_eq!(t.subtasks[1].window.release, 6);
    assert_eq!(t.subtasks[1].scheduled_at, None);
    assert!(t.subtasks[1].halted_at.is_some());
    // T received exactly one quantum; U runs from 10 at weight 1/2.
    assert_eq!(r.task(TaskId(0)).scheduled_count, 1);
    let u = r.task(TaskId(20));
    assert!(u.scheduled_count >= 14); // ~1/2 of slots 10..40
}

/// Fig. 6(b): T increases 3/20 → 1/2 at time 10 via rule O (ties are
/// broken in favor of the C tasks, so T_2 is unscheduled and halts).
/// The paper labels T's drift as 1/2 and has the change enacted at 10.
#[test]
fn fig6b_rule_o() {
    let mut w = fig6_base((3, 20));
    w.reweight(0, 10, 1, 2);
    let cfg = SimConfig::oi(4, 40)
        .with_tie_break(disfavoring(0, 20))
        .with_admission(AdmissionPolicy::Trusting)
        .with_history();
    let r = simulate(cfg, &w);
    assert!(r.is_miss_free());
    let tr = r.task(TaskId(0));
    let t = tr.history.as_ref().unwrap();
    // T_2 halted at t_c = 10, never scheduled.
    let t2 = &t.subtasks[1];
    assert_eq!(t2.index, 2);
    assert_eq!(t2.halted_at, Some(10));
    assert_eq!(t2.scheduled_at, None);
    // The new era opens at 10 (max(t_c, D(I_SW, T_1) + b(T_1)) =
    // max(10, 7 + 1)).
    let era = t
        .subtasks
        .iter()
        .find(|s| s.era_first && s.index > 1)
        .unwrap();
    assert_eq!(era.window.release, 10);
    // drift(T, 10) = A(I_PS, T, 0, 10) − A(I_CSW, T, 0, 10)
    //              = 3/2 − 1 = 1/2 (paper text).
    assert_eq!(tr.drift.at(10), rat(1, 2));
    assert_eq!(tr.drift.at(9), rat(0, 1));
}

/// Fig. 6(c): as (b) but ties favor T, so T_2 is scheduled and rule I
/// applies: the increase is enacted immediately at 10, D(I_SW, T_2) =
/// 11, and the next subtask is released at 12 — "two time units earlier
/// than its deadline" (14).
#[test]
fn fig6c_rule_i_increase() {
    let mut w = fig6_base((3, 20));
    w.reweight(0, 10, 1, 2);
    let cfg = SimConfig::oi(4, 40)
        .with_tie_break(favoring(0))
        .with_admission(AdmissionPolicy::Trusting)
        .with_history();
    let r = simulate(cfg, &w);
    assert!(r.is_miss_free());
    let tr = r.task(TaskId(0));
    let t = tr.history.as_ref().unwrap();
    let t2 = &t.subtasks[1];
    assert_eq!(t2.index, 2);
    assert!(
        t2.scheduled_at.is_some(),
        "T_2 must be scheduled before t_c"
    );
    assert_eq!(t2.halted_at, None);
    assert_eq!(t2.window.deadline, 14);
    // D(I_SW, T_2) = 11 (the immediate enactment accelerates it).
    assert_eq!(t2.isw_completion, Some(11));
    // New subtask released at D + b(T_2) = 11 + 1 = 12.
    let era = t
        .subtasks
        .iter()
        .find(|s| s.era_first && s.index > 1)
        .unwrap();
    assert_eq!(era.window.release, 12);
    // drift(T, 12) = 5/2 − 2 = 1/2.
    assert_eq!(tr.drift.at(12), rat(1, 2));
}

/// Fig. 6(d): T of weight 2/5 decreases to 3/20 at time 1 via rule I.
/// The change is enacted at D(I_SW, T_1) + b(T_1) = 3 + 1 = 4 and the
/// resulting drift is −3/20 (paper text).
#[test]
fn fig6d_rule_i_decrease() {
    let mut w = fig6_base((2, 5));
    w.reweight(0, 1, 3, 20);
    let cfg = SimConfig::oi(4, 40)
        .with_tie_break(favoring(0))
        .with_admission(AdmissionPolicy::Trusting)
        .with_history();
    let r = simulate(cfg, &w);
    assert!(r.is_miss_free());
    let tr = r.task(TaskId(0));
    let t = tr.history.as_ref().unwrap();
    assert_eq!(t.subtasks[0].scheduled_at, Some(0));
    assert_eq!(t.subtasks[0].isw_completion, Some(3));
    let era = t
        .subtasks
        .iter()
        .find(|s| s.era_first && s.index > 1)
        .unwrap();
    assert_eq!(era.window.release, 4);
    assert_eq!(tr.drift.at(4), rat(-3, 20));
    assert_eq!(tr.drift.at(100), rat(-3, 20), "drift persists once enacted");
}

/// Fig. 8 / Theorem 3: under PD²-LJ, a weight-1/10 task that asks for
/// 1/2 at time 4 cannot leave before d(T_1) + b(T_1) = 10 and
/// accumulates drift 24/10 — already above the PD²-OI per-event bound
/// of 2.
#[test]
fn fig8_lj_drift_24_10() {
    let mut w = Workload::new();
    w.join(0, 0, 1, 10); // T
    for i in 1..=35 {
        w.join(i, 0, 1, 10);
    }
    w.reweight(0, 4, 1, 2);
    let cfg = SimConfig::leave_join(4, 40)
        .with_tie_break(favoring(0))
        .with_admission(AdmissionPolicy::Trusting)
        .with_history();
    let r = simulate(cfg, &w);
    assert!(r.is_miss_free());
    let tr = r.task(TaskId(0));
    let t = tr.history.as_ref().unwrap();
    // T_1 runs in slot 0 (ties favor T); the new era opens only at 10.
    assert_eq!(t.subtasks[0].scheduled_at, Some(0));
    let era = t
        .subtasks
        .iter()
        .find(|s| s.era_first && s.index > 1)
        .unwrap();
    assert_eq!(era.window.release, 10);
    assert_eq!(tr.drift.at(10), rat(24, 10));
    assert!(
        tr.drift.max_abs_delta() > rat(2, 1),
        "LJ is not fine-grained"
    );
}

/// The Theorem 3 generalization: decreasing T's initial weight to
/// 1/(2(c+1)) makes the LJ drift grow without bound — with the change
/// initiated at time 1 (the earliest slot after T_1's release) the exact
/// value is `c − 1/2 + 1/(2(c+1))`, which exceeds `c − 1/2` for every
/// `c`. PD²-OI on the *same* workload keeps every per-event delta ≤ 2.
#[test]
fn fig8_generalization_drift_grows_with_inverse_weight() {
    for c in [1i64, 2, 4, 8] {
        let den = 2 * (i128::from(c) + 1);
        let mut w = Workload::new();
        w.join(0, 0, 1, den);
        w.reweight(0, 1, 1, 2);
        let lj = simulate(
            SimConfig::leave_join(1, 4 * den as i64)
                .with_tie_break(favoring(0))
                .with_admission(AdmissionPolicy::Trusting),
            &w,
        );
        let drift = lj.task(TaskId(0)).drift.max_abs();
        let expected = rat(i128::from(c), 1) - rat(1, 2) + rat(1, 2 * (i128::from(c) + 1));
        assert_eq!(drift, expected, "c = {c}: LJ drift mismatch");
        assert!(drift > rat(2 * i128::from(c) - 1, 2));

        let oi = simulate(
            SimConfig::oi(1, 4 * den as i64)
                .with_tie_break(favoring(0))
                .with_admission(AdmissionPolicy::Trusting),
            &w,
        );
        assert!(oi.task(TaskId(0)).drift.max_abs_delta() <= rat(2, 1));
        assert!(oi.is_miss_free());
    }
}

/// Fig. 9 / Theorem 4: the two-processor EPDF counterexample. Sets
/// A (10 × 1/7, leave at 7), B (2 × 1/6, leave at 6), C (2 × 1/14,
/// join at 6), D (5 × 1/21 → 1/3 at 7). A task in D misses at time 9.
#[test]
fn fig9_epdf_projected_deadline_miss() {
    let mut w = Workload::new();
    let mut id = 0u32;
    let mut d_tasks = Vec::new();
    for _ in 0..10 {
        w.join(id, 0, 1, 7);
        w.leave(id, 7);
        id += 1;
    }
    for _ in 0..2 {
        w.join(id, 0, 1, 6);
        w.leave(id, 6);
        id += 1;
    }
    for _ in 0..2 {
        w.join(id, 6, 1, 14);
        id += 1;
    }
    for _ in 0..5 {
        w.join(id, 0, 1, 21);
        w.reweight(id, 7, 1, 3);
        d_tasks.push(TaskId(id));
        id += 1;
    }
    let run = run_projected_epdf(2, 12, &w);
    // Exactly the D-set tasks can miss, and at the projected deadline 9.
    assert!(!run.misses.is_empty(), "the counterexample must miss");
    for m in &run.misses {
        assert!(d_tasks.contains(&m.task), "only D tasks miss: {m:?}");
        assert_eq!(m.deadline, 9);
    }
    // Four of the five D tasks fit in slots 7–8 on two processors:
    // by time 9 exactly four D quanta have run.
    let run_to_9 = run_projected_epdf(2, 9, &w);
    let scheduled_d: u64 = d_tasks.iter().map(|t| run_to_9.scheduled[t.idx()]).sum();
    assert_eq!(scheduled_d, 4);
    assert!(
        run_to_9.misses.is_empty(),
        "the miss surfaces only at time 9"
    );
}

/// Check that the same Fig. 9 task system is schedulable — no misses —
/// under PD²-OI (it is the EPDF *projection* scheme that fails, not the
/// task system).
#[test]
fn fig9_system_is_feasible_under_pd2_oi() {
    let mut w = Workload::new();
    let mut id = 0u32;
    for _ in 0..10 {
        w.join(id, 0, 1, 7);
        w.leave(id, 7);
        id += 1;
    }
    for _ in 0..2 {
        w.join(id, 0, 1, 6);
        w.leave(id, 6);
        id += 1;
    }
    for _ in 0..2 {
        w.join(id, 6, 1, 14);
        id += 1;
    }
    for _ in 0..5 {
        w.join(id, 0, 1, 21);
        w.reweight(id, 7, 1, 3);
        id += 1;
    }
    let r = simulate(
        SimConfig::oi(2, 42).with_admission(AdmissionPolicy::Trusting),
        &w,
    );
    assert!(r.is_miss_free(), "misses: {:?}", r.misses);
}

/// Sanity check on a paper-free but canonical scenario: a fully-loaded
/// periodic system (no reweighting) under PD² meets all deadlines and
/// every lag stays strictly inside (−1, 1).
#[test]
fn full_utilization_periodic_system_is_pfair() {
    let mut w = Workload::new();
    for i in 0..8 {
        w.join(i, 0, 1, 2); // 8 × 1/2 on 4 CPUs: total 4.0
    }
    let cfg = SimConfig::oi(4, 64).with_history();
    let r = simulate(cfg, &w);
    assert!(r.is_miss_free());
    for task in &r.tasks {
        let lags = task.history.as_ref().unwrap().lag_vs_icsw(64);
        for (t, lag) in lags.iter().enumerate() {
            assert!(
                rat(-1, 1) < *lag && *lag < rat(1, 1),
                "{} lag {} at {}",
                task.id,
                lag,
                t
            );
        }
    }
}

/// The headline invariants on the Fig. 6 variants: PD²-OI per-event
/// drift never exceeds 2 in absolute value (Theorem 5).
#[test]
fn fig6_variants_respect_theorem5() {
    let check = |r: &SimResult| {
        assert!(r.max_abs_drift_delta() <= rat(2, 1));
        assert!(r.is_miss_free());
    };
    for (weight, target, at) in [
        ((3i128, 20i128), (1i128, 2i128), 10i64),
        ((2, 5), (3, 20), 1),
    ] {
        let mut w = fig6_base(weight);
        w.reweight(0, at, target.0, target.1);
        for tb in [favoring(0), disfavoring(0, 20)] {
            let r = simulate(
                SimConfig::oi(4, 60)
                    .with_tie_break(tb)
                    .with_admission(AdmissionPolicy::Trusting),
                &w,
            );
            check(&r);
        }
    }
}
