//! Event-driven bookkeeping ≡ per-slot bookkeeping at the engine level.
//!
//! A history run (`record_history`) advances every task's ideal trackers
//! slot by slot — the oracle path. An event-driven run advances them
//! only at synchronization boundaries (reweight initiations, releases,
//! halts, leaves, end of run) via the closed-form `advance_to` jumps.
//! Because the jumps are bit-identical to per-slot accumulation (exact
//! rational arithmetic is associative), the two runs must agree on every
//! aggregate the engine reports: ideal totals, drift samples, scheduling
//! decisions, misses, and counters. Scheduling itself never depended on
//! the per-slot values, so even the quanta placement is unchanged.

use pfair_core::rational::Rational;
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::event::Workload;
use pfair_sched::reweight::{HybridPolicy, Scheme};
use proptest::prelude::*;

const HORIZON: i64 = 120;

fn arb_weight() -> impl Strategy<Value = (i128, i128)> {
    (2i128..=24).prop_flat_map(|den| (1i128..=(den / 2).max(1), Just(den)))
}

#[derive(Debug, Clone)]
struct TaskPlan {
    join_weight: (i128, i128),
    join_at: i64,
    reweights: Vec<(i64, (i128, i128))>,
    delay: Option<(i64, u32)>,
    leave_at: Option<i64>,
}

#[derive(Debug, Clone)]
struct Plan {
    processors: u32,
    tasks: Vec<TaskPlan>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    let delay = (0u32..=2, 1i64..HORIZON - 20, 1u32..6)
        .prop_map(|(on, at, by)| (on == 0).then_some((at, by)));
    let leave = (0u32..=2, 40i64..HORIZON - 5).prop_map(|(on, at)| (on == 0).then_some(at));
    let task = (
        arb_weight(),
        0i64..=30,
        prop::collection::vec(((1i64..HORIZON - 10), arb_weight()), 0..=3),
        delay,
        leave,
    )
        .prop_map(
            |(join_weight, join_at, reweights, delay, leave_at)| TaskPlan {
                join_weight,
                join_at,
                reweights,
                delay,
                leave_at,
            },
        );
    (1u32..=4, prop::collection::vec(task, 1..=8))
        .prop_map(|(processors, tasks)| Plan { processors, tasks })
}

fn workload_of(plan: &Plan) -> Workload {
    let mut w = Workload::new();
    for (i, t) in plan.tasks.iter().enumerate() {
        let id = u32::try_from(i).unwrap_or(0);
        w.join(id, t.join_at, t.join_weight.0, t.join_weight.1);
        for (at, wt) in &t.reweights {
            if *at > t.join_at {
                w.reweight(id, *at, wt.0, wt.1);
            }
        }
        if let Some((at, by)) = t.delay {
            if at > t.join_at {
                w.delay(id, at, by);
            }
        }
        if let Some(at) = t.leave_at {
            if at > t.join_at {
                w.leave(id, at);
            }
        }
    }
    w
}

/// Asserts every engine-reported aggregate matches between a per-slot
/// (history) run and an event-driven run of the same workload.
fn assert_runs_agree(plan: &Plan, cfg: SimConfig) {
    let w = workload_of(plan);
    let oracle = simulate(cfg.clone().with_history(), &w);
    let fast = simulate(cfg, &w);

    assert_eq!(oracle.tasks.len(), fast.tasks.len());
    for (o, f) in oracle.tasks.iter().zip(fast.tasks.iter()) {
        assert_eq!(o.id, f.id);
        assert_eq!(o.scheduled_count, f.scheduled_count, "task {}", o.id);
        assert_eq!(o.ps_total, f.ps_total, "I_PS of task {}", o.id);
        assert_eq!(o.isw_total, f.isw_total, "I_SW of task {}", o.id);
        assert_eq!(o.icsw_total, f.icsw_total, "I_CSW of task {}", o.id);
        assert_eq!(
            o.drift.samples(),
            f.drift.samples(),
            "drift samples of task {}",
            o.id
        );
        // The history run carries the per-slot series as an internal
        // consistency check: its I_SW per-slot sum, net of halted
        // corrections, must equal the totals both runs report.
        let hist = o.history.as_ref();
        assert!(hist.is_some(), "oracle run must record history");
        if let Some(h) = hist {
            let per_slot_sum = h
                .isw_per_slot
                .iter()
                .fold(Rational::ZERO, |acc, a| acc + *a);
            assert_eq!(per_slot_sum, o.isw_total, "per-slot sum of task {}", o.id);
        }
    }
    assert_eq!(&oracle.misses, &fast.misses);
    assert_eq!(&oracle.counters, &fast.counters);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PD²-OI: fine-grained reweighting exercises rules O and I, the
    /// eager completion projections, and enactment-boundary syncs.
    #[test]
    fn oi_event_driven_matches_per_slot(plan in arb_plan()) {
        assert_runs_agree(&plan, SimConfig::oi(plan.processors, HORIZON));
    }

    /// PD²-LJ: leave/join reweighting exercises halt-time syncs and
    /// rule-L departures.
    #[test]
    fn lj_event_driven_matches_per_slot(plan in arb_plan()) {
        assert_runs_agree(&plan, SimConfig::leave_join(plan.processors, HORIZON));
    }

    /// Hybrid policies switch schemes mid-run; the bookkeeping paths
    /// must stay interchangeable across the switches.
    #[test]
    fn hybrid_event_driven_matches_per_slot(plan in arb_plan(), nth in 1u32..4) {
        let cfg = SimConfig::oi(plan.processors, HORIZON)
            .with_scheme(Scheme::Hybrid(HybridPolicy::EveryNth(nth)));
        assert_runs_agree(&plan, cfg);
    }
}
