//! Soak tests: long-horizon runs that would expose bookkeeping leaks
//! (unbounded rational denominators, unpruned subtask records, drift
//! samples without bound) which short functional tests cannot see.
//! The paper's own timeline is 1,000–10,000 slots; these runs go to
//! 20,000 with sustained reweighting.

use pfair_core::rational::rat;
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::reweight::Scheme;
use pfair_sched::workloads;

const LONG: i64 = 20_000;

/// Sustained sawtooth reweighting for 20k slots: correctness and the
/// Theorem-5 bound hold throughout, and the exact arithmetic stays
/// small (denominators bounded by the weights' lcm, not the horizon).
#[test]
fn sawtooth_20k_slots() {
    let w = workloads::sawtooth(8, (1, 24), (1, 6), 120, LONG);
    let r = simulate(SimConfig::oi(3, LONG), &w);
    assert!(r.is_miss_free(), "misses: {}", r.misses.len());
    assert!(r.max_abs_drift_delta() <= rat(2, 1));
    for task in &r.tasks {
        assert!(
            task.icsw_total.denom() < 1_000_000,
            "denominator blow-up: {}",
            task.icsw_total.denom()
        );
        assert!(
            task.ps_total.denom() < 1_000_000,
            "I_PS denominator blow-up: {}",
            task.ps_total.denom()
        );
    }
    // Sustained adaptation really happened.
    assert!(r.counters.reweight_enactments > 1_000);
}

/// The same soak under PD²-LJ: correct (Theorem 1), even if drifty.
#[test]
fn sawtooth_20k_slots_lj() {
    let w = workloads::sawtooth(8, (1, 24), (1, 6), 120, LONG);
    let r = simulate(SimConfig::oi(3, LONG).with_scheme(Scheme::LeaveJoin), &w);
    assert!(r.is_miss_free());
}

/// Random adaptive churn at scale, with delays mixed in.
#[test]
fn random_adaptive_20k_slots() {
    let w = workloads::random_adaptive(10, 2_000, LONG, 4242);
    let r = simulate(SimConfig::oi(4, LONG), &w);
    assert!(r.is_miss_free(), "misses: {}", r.misses.len());
    assert!(r.max_abs_drift_delta() <= rat(2, 1));
}

/// Join/leave churn at scale: capacity is recycled indefinitely.
#[test]
fn churn_20k_slots() {
    let w = workloads::churn(12, 6, 500, LONG);
    let r = simulate(SimConfig::oi(3, LONG), &w);
    assert!(r.is_miss_free(), "misses: {}", r.misses.len());
}

/// History mode at scale: the recorded trace still verifies end to end
/// (this also bounds the memory the history machinery holds, since the
/// verifier walks every record).
#[test]
fn long_history_run_verifies() {
    let horizon = 5_000;
    let w = workloads::sawtooth(5, (1, 20), (1, 5), 100, horizon);
    let r = simulate(SimConfig::oi(2, horizon).with_history(), &w);
    pfair_sched::verify::assert_verified(&r);
}
