//! Heavy-task (weight > 1/2) scheduling under the full PD² priority
//! with the group-deadline tie-break.
//!
//! The paper's reweighting rules cover light tasks; heavy tasks are
//! deferred to the first author's dissertation because one wrong
//! decision triggers a cascade of squeezed length-2 windows. *Static*
//! heavy tasks, however, are classic PD² territory: with the
//! group-deadline tie-break PD² is optimal for any task set with total
//! weight ≤ M. These tests exercise that substrate, including fully
//! utilized systems, and check that heavy *reweighting* requests are
//! refused rather than mishandled.

use pfair_core::rational::{rat, Rational};
use pfair_core::task::TaskId;
use pfair_sched::admission::AdmissionPolicy;
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::event::Workload;
use proptest::prelude::*;

fn run(processors: u32, horizon: i64, weights: &[(i128, i128)]) -> pfair_sched::trace::SimResult {
    let mut w = Workload::new();
    for (i, (n, d)) in weights.iter().enumerate() {
        w.join(i as u32, 0, *n, *d);
    }
    simulate(
        SimConfig::oi(processors, horizon)
            .with_admission(AdmissionPolicy::Trusting)
            .with_history(),
        &w,
    )
}

/// The classic full-utilization heavy set: 8/11 + 8/11 + 6/11 = 2 on
/// two processors, over several hyperperiods.
#[test]
fn full_utilization_heavy_set_8_11() {
    let r = run(2, 110, &[(8, 11), (8, 11), (6, 11)]);
    assert!(r.is_miss_free(), "misses: {:?}", r.misses);
    // Exact allocation over 10 hyperperiods.
    assert_eq!(r.task(TaskId(0)).scheduled_count, 80);
    assert_eq!(r.task(TaskId(1)).scheduled_count, 80);
    assert_eq!(r.task(TaskId(2)).scheduled_count, 60);
}

/// Mixed heavy + light at full utilization: 3/4 + 3/4 + 1/4 + 1/4 = 2.
#[test]
fn mixed_heavy_light_full_utilization() {
    let r = run(2, 120, &[(3, 4), (3, 4), (1, 4), (1, 4)]);
    assert!(r.is_miss_free(), "misses: {:?}", r.misses);
    for (i, expect) in [(0u32, 90u64), (1, 90), (2, 30), (3, 30)] {
        assert_eq!(r.task(TaskId(i)).scheduled_count, expect);
    }
}

/// A weight-1 task owns a processor outright.
#[test]
fn weight_one_task_monopolizes_a_cpu() {
    let r = run(2, 60, &[(1, 1), (1, 2), (1, 2)]);
    assert!(r.is_miss_free());
    assert_eq!(r.task(TaskId(0)).scheduled_count, 60);
    assert_eq!(r.task(TaskId(1)).scheduled_count, 30);
}

/// The lag window holds for heavy tasks too: −1 < lag < 1 throughout.
#[test]
fn heavy_task_lag_bounds() {
    let r = run(2, 110, &[(8, 11), (8, 11), (6, 11)]);
    for task in &r.tasks {
        let lags = task.history.as_ref().unwrap().lag_vs_icsw(110);
        for (t, lag) in lags.iter().enumerate() {
            assert!(
                rat(-1, 1) < *lag && *lag < rat(1, 1),
                "{} lag {} at {}",
                task.id,
                lag,
                t
            );
        }
    }
}

/// Reweighting requests touching the heavy class are refused and
/// counted; the task keeps its weight and correctness is unaffected.
#[test]
fn heavy_reweights_are_refused() {
    let mut w = Workload::new();
    w.join(0, 0, 3, 4); // heavy
    w.join(1, 0, 1, 4); // light
    w.reweight(0, 8, 1, 2); // heavy task may not reweight
    w.reweight(1, 8, 2, 3); // light task may not become heavy
    let r = simulate(
        SimConfig::oi(1, 80).with_admission(AdmissionPolicy::Trusting),
        &w,
    );
    assert!(r.is_miss_free());
    assert_eq!(r.counters.rejected_heavy_reweights, 2);
    assert_eq!(r.counters.reweight_initiations, 0);
    // Allocations continue at the original weights.
    assert_eq!(r.task(TaskId(0)).scheduled_count, 60);
    assert_eq!(r.task(TaskId(1)).scheduled_count, 20);
}

/// Light reweighting next to a running heavy task stays correct.
#[test]
fn light_reweighting_beside_heavy_tasks() {
    let mut w = Workload::new();
    w.join(0, 0, 3, 4); // heavy, static
    w.join(1, 0, 1, 10);
    w.join(2, 0, 1, 10);
    w.reweight(1, 7, 1, 5);
    w.reweight(1, 31, 1, 10);
    w.reweight(2, 13, 3, 20);
    let r = simulate(SimConfig::oi(2, 200), &w);
    assert!(r.is_miss_free(), "misses: {:?}", r.misses);
    assert!(r.max_abs_drift_delta() <= rat(2, 1));
}

/// Random full(ish)-utilization mixed sets: PD² with the group-deadline
/// tie-break never misses when Σ weights ≤ M.
fn arb_mixed_set() -> impl Strategy<Value = (u32, Vec<(i128, i128)>)> {
    (
        2u32..=3,
        prop::collection::vec((1i128..=11, 3i128..=12), 2..=6),
    )
        .prop_map(|(m, raw)| {
            // Normalize: clamp each weight into (0, 1], then scale down until
            // the total fits M.
            let mut weights: Vec<(i128, i128)> =
                raw.into_iter().map(|(n, d)| (n.min(d), d)).collect();
            loop {
                let total: Rational = weights
                    .iter()
                    .fold(Rational::ZERO, |a, (n, d)| a + rat(*n, *d));
                if total <= Rational::from_int(i128::from(m)) {
                    break;
                }
                // Halve the largest weight (by doubling its denominator).
                let idx = weights
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (n, d))| rat(*n, *d))
                    .map(|(i, _)| i)
                    .unwrap();
                weights[idx].1 *= 2;
            }
            (m, weights)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_mixed_sets_never_miss((m, weights) in arb_mixed_set()) {
        let r = run(m, 150, &weights);
        prop_assert!(r.is_miss_free(), "weights {:?}: {:?}", weights, r.misses);
    }

    /// Allocation accuracy for random mixed sets: each task's total is
    /// within one quantum of its ideal at the horizon.
    #[test]
    fn random_mixed_sets_track_ideal((m, weights) in arb_mixed_set()) {
        let r = run(m, 150, &weights);
        for (i, (n, d)) in weights.iter().enumerate() {
            let ideal = rat(*n, *d) * 150;
            let got = Rational::from_int(i128::from(r.task(TaskId(i as u32)).scheduled_count));
            prop_assert!(
                (got - ideal).abs() < Rational::ONE,
                "task {} got {} vs ideal {}",
                i, got, ideal
            );
        }
    }
}
