//! Fig. 3 at engine level: the AIS model's central structural claim —
//! after an enacted weight change, a task's subtasks have "similar
//! releases, deadlines, and b-bits as the first subtasks of a task with
//! the new weight" (paper §3.1, comparing Fig. 3(a)'s T_3–T_5 against
//! Fig. 3(c)'s U_1–U_3) — plus differential statistics between the
//! schemes on matched random workloads.

use pfair_core::rational::rat;
use pfair_core::task::TaskId;
use pfair_core::weight::Weight;
use pfair_core::window::periodic_window;
use pfair_sched::admission::AdmissionPolicy;
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::event::Workload;
use pfair_sched::priority::TieBreak;
use pfair_sched::reweight::Scheme;
use pfair_sched::workloads;
use proptest::prelude::*;

/// Fig. 3(a)/(c), rule-O path: the Fig. 6(b) system (T is never
/// favored, so T_2 halts) — after enactment, the era subtasks' windows
/// equal those of a fresh task with the new weight joining at the
/// enactment time (the paper's comparison of Fig. 3(a)'s T_3–T_5 with
/// Fig. 3(c)'s U_1–U_3).
#[test]
fn fig3a_rule_o_era_windows_match_fresh_task() {
    let mut w = Workload::new();
    w.join(0, 0, 3, 20);
    for i in 1..=19 {
        w.join(i, 0, 3, 20);
    }
    w.reweight(0, 10, 2, 5);
    let disfavor_t = TieBreak::Ranked(
        (1..20)
            .map(|t| (TaskId(t), 0))
            .chain(std::iter::once((TaskId(0), 1)))
            .collect(),
    );
    let r = simulate(
        SimConfig::oi(4, 40)
            .with_tie_break(disfavor_t)
            .with_admission(AdmissionPolicy::Trusting)
            .with_history(),
        &w,
    );
    assert!(r.is_miss_free());
    let hist = r.task(TaskId(0)).history.as_ref().unwrap();
    // T_2 halted at t_c (rule O: unscheduled because T loses all ties).
    assert_eq!(hist.subtasks[1].halted_at, Some(10));
    let era_start = hist
        .subtasks
        .iter()
        .find(|s| s.era_first && s.index > 1)
        .map(|s| s.window.release)
        .expect("era opened");
    assert_eq!(
        era_start, 10,
        "rule O enacts at max(t_c, D(T_1)+b) = max(10, 8)"
    );
    let fresh = Weight::new(rat(2, 5));
    let era_subs: Vec<_> = hist.subtasks.iter().filter(|s| s.index > 2).collect();
    assert!(era_subs.len() >= 3);
    for (k, sub) in era_subs.iter().take(3).enumerate() {
        let expect = periodic_window(fresh, k as u64 + 1, era_start);
        assert_eq!(
            sub.window,
            expect,
            "era subtask {} (cf. Fig. 3(c) U_{})",
            k + 1,
            k + 1
        );
    }
}

/// Fig. 3(b): the same change via rule I (T_2 scheduled early because T
/// wins ties). The enactment is immediate; the era-opening release waits
/// for D(I_SW, X_2) + b(X_2) = 10 + 1.
#[test]
fn fig3b_rule_i_release_after_completion() {
    let mut w = Workload::new();
    w.join(0, 0, 3, 19);
    w.join(1, 0, 1, 2);
    w.reweight(0, 8, 2, 5);
    let r = simulate(
        SimConfig::oi(1, 40)
            .with_tie_break(TieBreak::TaskIdAsc) // T favored: X_2 runs early
            .with_admission(AdmissionPolicy::Trusting)
            .with_history(),
        &w,
    );
    assert!(r.is_miss_free());
    let hist = r.task(TaskId(0)).history.as_ref().unwrap();
    let x2 = &hist.subtasks[1];
    assert!(x2.scheduled_at.unwrap() < 8, "X_2 scheduled before t_c");
    assert_eq!(x2.halted_at, None);
    // D(I_SW, X_2) = 10 (Fig. 7's table), b(X_2) = 1 → release at 11.
    assert_eq!(x2.isw_completion, Some(10));
    let era = hist
        .subtasks
        .iter()
        .find(|s| s.era_first && s.index > 1)
        .unwrap();
    assert_eq!(era.window.release, 11);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential statistics on matched random sawtooth workloads:
    /// across many seeds, PD²-OI's aggregate drift never falls behind
    /// PD²-LJ's by more than noise, and on average is strictly better.
    #[test]
    fn oi_beats_lj_on_aggregate_drift(seed in 0u64..5000) {
        let w = workloads::random_adaptive(6, 40, 300, seed);
        let oi = simulate(SimConfig::oi(2, 300), &w);
        let lj = simulate(SimConfig::oi(2, 300).with_scheme(Scheme::LeaveJoin), &w);
        prop_assert!(oi.is_miss_free() && lj.is_miss_free());
        let oi_drift = oi.max_abs_drift_at(300).to_f64();
        let lj_drift = lj.max_abs_drift_at(300).to_f64();
        // Per-seed, OI may tie but never loses by more than one quantum
        // (sign conventions can favor either on tiny workloads).
        prop_assert!(
            oi_drift <= lj_drift + 1.0,
            "seed {}: OI {} vs LJ {}",
            seed, oi_drift, lj_drift
        );
    }
}
