//! Intra-sporadic separations through the full engine: delayed subtask
//! releases (θ offsets, paper §2's IS model) interacting with PD²
//! scheduling, the ideal trackers, and reweighting.

use pfair_core::rational::rat;
use pfair_core::task::TaskId;
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::event::Workload;
use proptest::prelude::*;

/// Fig. 1(b) at engine level: a weight-5/16 task whose second subtask
/// is delayed two slots and whose third is delayed one more. Windows
/// must be [0,4), [5,9), [9,13) and the task must be inactive in slot 4.
#[test]
fn fig1b_window_chain_through_engine() {
    let mut w = Workload::new();
    w.join(0, 0, 5, 16);
    w.delay(0, 1, 2); // θ(T_2) = 2: next release 3 → 5
    w.delay(0, 6, 1); // θ(T_3) = 3: next release 8 → 9
    let r = simulate(SimConfig::oi(1, 32).with_history(), &w);
    assert!(r.is_miss_free());
    let hist = r.task(TaskId(0)).history.as_ref().unwrap();
    let windows: Vec<(i64, i64)> = hist
        .subtasks
        .iter()
        .take(3)
        .map(|s| (s.window.release, s.window.deadline))
        .collect();
    assert_eq!(windows, vec![(0, 4), (5, 9), (9, 13)]);
    // The instantaneous ideal owes nothing for the inactive slot 4 (the
    // two-slot separation minus the b = 1 overlap), and the second
    // separation (θ +1 against b = 1) leaves no gap: over the 32-slot
    // horizon I_PS totals exactly 31 slots' worth of weight.
    assert_eq!(r.task(TaskId(0)).ps_total, rat(5, 16) * 31);
}

/// A delayed release never causes a deadline miss (the window simply
/// shifts), and the schedule stays exact.
#[test]
fn delays_never_cause_misses() {
    let mut w = Workload::new();
    for i in 0..4 {
        w.join(i, 0, 1, 4);
    }
    w.delay(0, 2, 5);
    w.delay(1, 3, 2);
    w.delay(0, 30, 7);
    let r = simulate(SimConfig::oi(1, 80), &w);
    assert!(r.is_miss_free(), "misses: {:?}", r.misses);
}

/// Delays compose with reweighting: a separation followed by a weight
/// change keeps all invariants.
#[test]
fn delay_then_reweight() {
    let mut w = Workload::new();
    w.join(0, 0, 1, 5);
    w.join(1, 0, 2, 5);
    w.delay(0, 2, 4);
    w.reweight(0, 12, 2, 5);
    let r = simulate(SimConfig::oi(1, 60).with_history(), &w);
    assert!(r.is_miss_free());
    assert!(r.max_abs_drift_delta() <= rat(2, 1));
}

/// A delay while a reweighting change is pending is ignored (no release
/// is scheduled to postpone) — documented engine semantics.
#[test]
fn delay_during_pending_change_is_ignored() {
    let mut w = Workload::new();
    w.join(0, 0, 1, 5);
    w.reweight(0, 2, 1, 10); // decrease: pending until D + b
    w.delay(0, 3, 50); // no scheduled release to delay
    let r = simulate(SimConfig::oi(1, 60), &w);
    assert!(r.is_miss_free());
    // The task keeps running (the delay did not strand it).
    assert!(r.task(TaskId(0)).scheduled_count >= 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random delays on a random feasible system: never a miss, lag
    /// window intact.
    #[test]
    fn random_delays_preserve_correctness(
        delays in prop::collection::vec((0u32..4, 1i64..90, 1u32..8), 0..8),
        weights in prop::collection::vec((1i128..=5, 6i128..=14), 2..=4),
    ) {
        let mut w = Workload::new();
        for (i, (n, d)) in weights.iter().enumerate() {
            w.join(i as u32, 0, *n, *d);
        }
        let n_tasks = weights.len() as u32;
        for (task, at, by) in delays {
            if task < n_tasks {
                w.delay(task, at, by);
            }
        }
        let r = simulate(SimConfig::oi(2, 120).with_history(), &w);
        prop_assert!(r.is_miss_free(), "misses: {:?}", r.misses);
        for task in &r.tasks {
            let lags = task.history.as_ref().unwrap().lag_vs_icsw(120);
            for lag in &lags {
                prop_assert!(rat(-1, 1) < *lag && *lag < rat(1, 1));
            }
        }
    }
}
