//! Shard-count and pool-width determinism for [`ShardSet`] runs, plus
//! the migration drift guarantee.
//!
//! Two separate claims, pinned separately:
//!
//! 1. **Pool width is invisible.** Driving the *same* shard partition
//!    on 1, 2, 4, or 8 worker threads is the same computation — the
//!    full [`ShardReport::to_json`] rendering (per-shard counters,
//!    per-task drift, merged metrics text) must be byte-identical.
//! 2. **The partition is invisible in the aggregate.** For a
//!    reweight-free feasible aligned workload (see
//!    [`workloads::POPULATION_ALIGNMENT`]) every shard schedules its
//!    members miss-free and the ideal trackers depend only on each
//!    task's own event times, so the invariant subset
//!    ([`ShardReport::invariant_json`]: per-task scheduled quanta,
//!    ideal totals, drift samples, global totals) must be
//!    byte-identical across 1, 2, 4, and 8 shards.

use pfair_json::ToJson;
use pfair_sched::prelude::*;
use pfair_sched::shard::{ShardSet, ShardSpec};
use pfair_sched::workloads::{self, POPULATION_ALIGNMENT};

const TASKS: u32 = 1024;
const SEED: u64 = 0x005e_ed10;

fn population_spec(shards: usize) -> ShardSpec {
    let horizon = POPULATION_ALIGNMENT;
    // 1024 population tasks request at most 1024/512 = 2 processors in
    // total; one processor per shard admits every placement in all of
    // the tested shard counts (least-utilized-first keeps each shard
    // under its budget).
    ShardSpec::new(shards, 2, horizon).with_segment(512)
}

fn report(shards: usize, threads: usize) -> pfair_sched::shard::ShardReport {
    let w = workloads::synthetic_population(TASKS, SEED);
    let mut set = ShardSet::new(population_spec(shards).with_threads(threads), &w);
    set.run();
    set.finish()
}

#[test]
fn pool_width_never_changes_a_report_byte() {
    let reference = report(4, 1).to_json().to_string_pretty();
    for threads in [2usize, 4, 8] {
        let candidate = report(4, threads).to_json().to_string_pretty();
        assert_eq!(
            reference, candidate,
            "ShardReport diverged between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn shard_count_never_changes_the_aggregate() {
    let reference = report(1, 1);
    assert_eq!(
        reference.misses(),
        0,
        "reference partition must be feasible"
    );
    // Aligned horizon: every weight-1/L task runs exactly H/L quanta.
    for task in &reference.tasks {
        assert!(task.scheduled_count > 0);
        assert_eq!(
            POPULATION_ALIGNMENT % i64::try_from(task.scheduled_count).unwrap(),
            0,
            "task {} scheduled a non-divisor quantum count",
            task.id
        );
    }
    let reference = reference.invariant_json();
    for shards in [2usize, 4, 8] {
        let candidate = report(shards, 4).invariant_json();
        assert_eq!(
            reference, candidate,
            "aggregate invariants diverged between 1 and {shards} shards"
        );
    }
}

/// Migration preserves the per-task drift guarantee: a leave/rejoin
/// move is the paper's LJ event pair, so the migrated task's drift
/// samples stay within the per-era bound and its schedule stays
/// miss-free — and every unmigrated task is untouched.
#[test]
fn migration_is_drift_bounded_leave_rejoin() {
    let w = workloads::synthetic_population(256, SEED);
    let spec = ShardSpec::new(2, 1, POPULATION_ALIGNMENT).with_segment(512);

    let baseline = {
        let mut set = ShardSet::new(spec.clone(), &w);
        set.run();
        set.finish()
    };

    let migrated = {
        let mut set = ShardSet::new(spec, &w);
        // Drive a few segments, then force one cross-shard move.
        while set.now() < 1024 {
            let before = set.now();
            set.run_segments(1);
            assert!(set.now() > before);
        }
        assert!(set.migrate_task(0, 1), "task 0 must be movable to shard 1");
        assert_eq!(set.migrations(), 1);
        set.run();
        set.finish()
    };

    assert_eq!(baseline.misses(), 0);
    assert_eq!(migrated.misses(), 0, "migration introduced a miss");
    assert_eq!(migrated.migrations, 1);

    for (b, m) in baseline.tasks.iter().zip(migrated.tasks.iter()) {
        assert_eq!(b.id, m.id);
        if b.id == 0 {
            // The mover: one extra era from the rejoin, and — exactly
            // as under the paper's LJ reweighting pair — each era opens
            // drift-free: the leave settles the old era's accounts and
            // the rejoin starts a clean slate on the target shard.
            assert_eq!(m.drift.len(), b.drift.len() + 1);
            for sample in &m.drift {
                assert_eq!(
                    sample.drift,
                    rat(0, 1),
                    "migrated task's era opened with nonzero drift at slot {}",
                    sample.at
                );
            }
        } else {
            // Everyone else: byte-equal outcome.
            assert_eq!(b.to_json().to_string(), m.to_json().to_string());
        }
    }
}
