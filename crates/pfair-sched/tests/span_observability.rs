//! Span-level observability at the engine boundary.
//!
//! Three contracts pinned here:
//!
//! 1. **Compat** — a legacy probe (default `SPAN_AWARE = false`) sees a
//!    hook stream from the tickless driver that is bit-identical to the
//!    per-slot oracle's, because every span-level event's default
//!    implementation replays the per-slot hooks.
//! 2. **Exactness** — a span-aware `MetricsProbe` attached to a
//!    saturated 100k-slot busy-span run rebuilds its registry from span
//!    digests bit-identically to the per-slot oracle, while the batcher
//!    actually jumps.
//! 3. **Overhead** — that same probed busy-span run stays within 3× of
//!    the `NoopProbe` busy-span run (generous floor for noisy CI
//!    machines; the precise pairs live in `BENCH_pr9.json`).

use pfair_core::rational::rat;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_obs::{
    Fanout, FlightRecorder, FlightTrigger, MetricsProbe, NoopProbe, Probe, ReleaseRec, SloConfig,
    SloMonitor, SpanDigest,
};
use pfair_sched::admission::AdmissionPolicy;
use pfair_sched::engine::{simulate_with, Engine, SimConfig};
use pfair_sched::event::Workload;
use std::time::Instant;

/// A saturated uniform workload: `tasks` tasks of weight
/// `num/den` joining at slot 0. With `tasks * num == m * den` the
/// system is exactly saturated and periodic with period `den`.
fn uniform(tasks: u32, num: i128, den: i128) -> Workload {
    let mut w = Workload::new();
    for i in 0..tasks {
        w.join(i, 0, num, den);
    }
    w
}

// ---------------------------------------------------------------------
// 1. Compat: legacy probes replay per-slot, bit-identically.
// ---------------------------------------------------------------------

/// A legacy probe: records the per-slot hooks it cares about and keeps
/// the default `SPAN_AWARE = false`, so every span event it receives
/// goes through the replaying default implementations.
#[derive(Default)]
struct LegacyLog {
    slots: Vec<Slot>,
    releases: Vec<(TaskId, u64, Slot)>,
    schedules: Vec<(TaskId, u64, Slot)>,
}

impl Probe for LegacyLog {
    fn on_slot_start(&mut self, t: Slot) {
        self.slots.push(t);
    }
    fn on_release(&mut self, task: TaskId, index: u64, t: Slot, _deadline: Slot, _era: bool) {
        self.releases.push((task, index, t));
    }
    fn on_schedule(&mut self, task: TaskId, index: u64, t: Slot) {
        self.schedules.push((task, index, t));
    }
}

/// A span-aware observer that keeps the spans it was offered, to prove
/// the tickless driver actually used the span-level hooks.
#[derive(Default)]
struct SpanLog {
    quiet_spans: Vec<(Slot, Slot)>,
    release_batches: Vec<(Slot, usize)>,
    jumps: Vec<(Slot, Slot, u64)>,
    slots: Vec<Slot>,
}

impl Probe for SpanLog {
    const SPAN_AWARE: bool = true;
    fn on_slot_start(&mut self, t: Slot) {
        self.slots.push(t);
    }
    fn on_quiet_span(&mut self, from: Slot, to: Slot, _holes: u64) {
        self.quiet_spans.push((from, to));
    }
    fn on_release_batch(&mut self, t: Slot, releases: &[ReleaseRec]) {
        self.release_batches.push((t, releases.len()));
    }
    fn on_busy_span_jump(&mut self, _t0: Slot, t1: Slot, periods: u64, digest: &SpanDigest) {
        self.jumps.push((t1, digest.period, periods));
    }
}

/// A sparse workload whose quiet spans dominate the horizon.
fn sparse_workload() -> Workload {
    let mut w = Workload::new();
    for i in 0..5u32 {
        w.join(i, i64::from(i) * 7, 1, 90 + i128::from(i) * 11);
    }
    w.reweight(1, 500, 1, 70);
    w.delay(2, 600, 550);
    w.leave(4, 1_500);
    w
}

#[test]
fn legacy_probe_stream_is_bit_identical_across_drivers() {
    let w = sparse_workload();
    let cfg = SimConfig::oi(3, 2_500);
    let (oracle, slow) = simulate_with(cfg.clone().per_slot(), &w, LegacyLog::default());
    let (fast_res, fast) = simulate_with(cfg, &w, LegacyLog::default());
    assert_eq!(slow.slots, fast.slots, "slot replay diverged");
    assert_eq!(slow.releases, fast.releases, "release stream diverged");
    assert_eq!(slow.schedules, fast.schedules, "schedule stream diverged");
    assert_eq!(oracle.counters, fast_res.counters);
}

#[test]
fn span_aware_probe_receives_collapsed_spans() {
    let w = sparse_workload();
    let cfg = SimConfig::oi(3, 2_500);
    let (_, spans) = simulate_with(cfg.clone(), &w, SpanLog::default());
    assert!(
        !spans.quiet_spans.is_empty(),
        "a sparse tickless run must collapse at least one quiet span"
    );
    assert!(!spans.release_batches.is_empty());
    // Replaying the spans per-slot reconstructs exactly the oracle's
    // slot set: each slot is either directly started or inside a span.
    let (_, slow) = simulate_with(cfg.per_slot(), &w, LegacyLog::default());
    let mut rebuilt: Vec<Slot> = spans.slots.clone();
    for &(from, to) in &spans.quiet_spans {
        rebuilt.extend(from..to);
    }
    rebuilt.sort_unstable();
    assert_eq!(
        rebuilt, slow.slots,
        "span arithmetic lost or invented slots"
    );
}

// ---------------------------------------------------------------------
// 2 + 3. Saturated 100k: exactness and the 3× overhead pin.
// ---------------------------------------------------------------------

#[test]
fn saturated_100k_metrics_probe_is_exact_within_overhead_budget() {
    // 12 tasks × 1/3 on M = 4: exactly saturated, period 3. Every slot
    // schedules 4 of 12 tasks; the busy-span batcher carries virtually
    // the whole horizon once armed.
    let w = uniform(12, 1, 3);
    let cfg = SimConfig::oi(4, 100_000);

    let noop_started = Instant::now();
    let mut noop_engine = Engine::with_probe(cfg.clone(), &w, NoopProbe);
    noop_engine.run();
    let noop_jumps = noop_engine.busy_span_jumps();
    let (noop_res, _) = noop_engine.finish_with_probe();
    let noop_time = noop_started.elapsed();

    let probed_started = Instant::now();
    let mut probed_engine = Engine::with_probe(cfg.clone(), &w, MetricsProbe::new());
    probed_engine.run();
    let probed_jumps = probed_engine.busy_span_jumps();
    let (probed_res, probed_metrics) = probed_engine.finish_with_probe();
    let probed_time = probed_started.elapsed();

    assert!(noop_jumps > 0, "noop run never jumped");
    assert!(
        probed_jumps > 0,
        "span-aware MetricsProbe must not disable busy-span batching"
    );
    assert_eq!(noop_res.counters, probed_res.counters);

    // Exactness: the span-digest-rebuilt registry equals the per-slot
    // oracle's hook-by-hook registry, bit for bit.
    let (_, oracle_metrics) = simulate_with(cfg.per_slot(), &w, MetricsProbe::new());
    assert_eq!(
        oracle_metrics.registry().snapshot_text(),
        probed_metrics.registry().snapshot_text(),
        "span-aggregated registry diverged from the per-slot oracle at 100k slots"
    );
    let reg = probed_metrics.registry();
    assert_eq!(reg.counter("slots"), 100_000);
    assert_eq!(reg.counter("schedules"), 400_000);

    // Overhead pin: within 3× of the noop busy-span run, with a floor
    // so scheduler noise on tiny absolute times cannot flake the test.
    // (The precise interleaved measurement is the bench pair in
    // BENCH_pr9.json; this is the regression backstop.)
    let budget = (noop_time * 3).max(std::time::Duration::from_millis(250));
    assert!(
        probed_time <= budget,
        "probed busy-span run took {probed_time:?}, budget {budget:?} (noop {noop_time:?})"
    );
}

// ---------------------------------------------------------------------
// Flight recorder and SLO monitor riding a real engine run.
// ---------------------------------------------------------------------

#[test]
fn flight_and_slo_probes_capture_engine_misses() {
    // Trusting admission grants an infeasible load (total weight 5/2 on
    // one processor), so deadline misses are guaranteed.
    let mut w = Workload::new();
    for i in 0..5u32 {
        w.join(i, 0, 1, 2);
    }
    let cfg = SimConfig::oi(1, 64).with_admission(AdmissionPolicy::Trusting);
    let probe = Fanout(
        FlightRecorder::new(),
        SloMonitor::new(SloConfig {
            window: 32,
            max_misses: 0,
            drift_budget: Some(rat(1_000, 1)),
            max_reweight_latency: None,
        }),
    );
    let (res, Fanout(flight, slo)) = simulate_with(cfg, &w, probe);
    assert!(!res.misses.is_empty(), "overloaded run produced no misses");
    assert!(
        flight
            .incidents()
            .iter()
            .any(|i| i.trigger == FlightTrigger::DeadlineMiss),
        "flight recorder captured no deadline-miss incident"
    );
    assert!(flight.recent().count() > 0);
    assert_eq!(slo.misses_total(), u64::try_from(res.misses.len()).unwrap());
    assert!(!slo.is_clean(), "SLO monitor missed the miss-rate breach");
    assert!(slo.report().contains("miss_rate"));
}

#[test]
fn slo_monitor_stays_clean_and_samples_drift_on_feasible_runs() {
    let w = uniform(6, 1, 3);
    let cfg = SimConfig::oi(2, 5_000);
    let (res, slo) = simulate_with(cfg, &w, SloMonitor::new(SloConfig::default()));
    assert!(res.misses.is_empty());
    assert!(slo.is_clean());
    assert_eq!(slo.misses_total(), 0);
    // Era-opening releases sampled drift through the probe hook.
    let rendered = slo.to_json().to_string_pretty();
    assert!(rendered.contains("drift"), "report must carry drift data");
    assert!(slo.report().contains("no SLO breaches"));
}
