//! Recovery ≡ uninterrupted execution, bit for bit.
//!
//! The persistence invariant (see `pfair-persist` docs): snapshot a
//! run at slot `k`, serialize the snapshot (and the observer's metrics
//! registry) to text, drop the engine, parse everything back, restore,
//! and run to the horizon — the rendered `SimResult`, every overhead
//! counter, every drift sample, and the final metrics registry are
//! **bit-identical** to the run that was never interrupted. Randomized
//! AIS scripts across OI, LJ, and hybrid schemes exercise reweights
//! (rules O/I/L/J), IS delays past the calendar-ring window, rule-L
//! leaves, and admission rejections; every case is checked under both
//! the tickless driver and the per-slot oracle. A separate suite of
//! deterministic tests covers segmented execution and journal replay
//! after a mid-run crash.

use pfair_core::rational::rat;
use pfair_core::task::TaskId;
use pfair_core::weight::Weight;
use pfair_json::{FromJson, Json, ToJson};
use pfair_obs::{MetricsProbe, NoopProbe, Registry};
use pfair_persist::{
    read_journal, replay, run_segments, snapshot_from_str, snapshot_to_string, Journal,
};
use pfair_sched::engine::{simulate, simulate_with, Engine, SimConfig};
use pfair_sched::event::{Event, EventKind, Workload};
use pfair_sched::reweight::{HybridPolicy, Scheme};
use proptest::prelude::*;

const HORIZON: i64 = 160;

/// Light weights with small denominators keep windows short; large
/// denominators open long windows where the tickless driver batches
/// hard. Mix both, as in the tickless equivalence suite.
fn arb_weight() -> impl Strategy<Value = (i128, i128)> {
    (2i128..=60).prop_flat_map(|den| (1i128..=(den / 2).max(1), Just(den)))
}

#[derive(Debug, Clone)]
struct TaskPlan {
    join_weight: (i128, i128),
    join_at: i64,
    reweights: Vec<(i64, (i128, i128))>,
    delay: Option<(i64, u32)>,
    leave_at: Option<i64>,
}

#[derive(Debug, Clone)]
struct Plan {
    processors: u32,
    tasks: Vec<TaskPlan>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    // Delays up to 600 slots push releases past the 512-slot calendar
    // window, so snapshots must carry ring overflow lists too.
    let delay = (0u32..=2, 1i64..HORIZON - 20, 1u32..600)
        .prop_map(|(on, at, by)| (on == 0).then_some((at, by)));
    let leave = (0u32..=2, 40i64..HORIZON - 5).prop_map(|(on, at)| (on == 0).then_some(at));
    let task = (
        arb_weight(),
        0i64..=30,
        prop::collection::vec(((1i64..HORIZON - 10), arb_weight()), 0..=3),
        delay,
        leave,
    )
        .prop_map(
            |(join_weight, join_at, reweights, delay, leave_at)| TaskPlan {
                join_weight,
                join_at,
                reweights,
                delay,
                leave_at,
            },
        );
    (1u32..=4, prop::collection::vec(task, 1..=8))
        .prop_map(|(processors, tasks)| Plan { processors, tasks })
}

fn workload_of(plan: &Plan) -> Workload {
    let mut w = Workload::new();
    for (i, t) in plan.tasks.iter().enumerate() {
        let id = u32::try_from(i).unwrap_or(0);
        w.join(id, t.join_at, t.join_weight.0, t.join_weight.1);
        for (at, wt) in &t.reweights {
            if *at > t.join_at {
                w.reweight(id, *at, wt.0, wt.1);
            }
        }
        if let Some((at, by)) = t.delay {
            if at > t.join_at {
                w.delay(id, at, by);
            }
        }
        if let Some(at) = t.leave_at {
            if at > t.join_at {
                w.leave(id, at);
            }
        }
    }
    w
}

/// One interruption experiment under one configuration: straight run
/// vs snapshot-at-`k` → serialize → drop → parse → restore → run.
fn assert_recovery_matches(w: &Workload, cfg: SimConfig, snap_at: i64) {
    let (reference, ref_metrics) = simulate_with(cfg.clone(), w, MetricsProbe::new());

    // The interrupted run, observed by the same probe kind.
    let mut engine = Engine::with_probe(cfg, w, MetricsProbe::new());
    let snapshot = engine.snapshot_at(snap_at).expect("snapshot");
    let snapshot_text = snapshot_to_string(&snapshot);
    let registry_text = engine.probe_mut().registry().to_json().to_string_pretty();
    drop(engine); // process death: only the two texts survive

    let recovered = snapshot_from_str(&snapshot_text).expect("snapshot recovers");
    let registry = Registry::from_json(&Json::parse(&registry_text).expect("registry parses"))
        .expect("registry recovers");
    let mut resumed =
        Engine::restore(recovered, MetricsProbe::from_registry(registry)).expect("restore");
    resumed.run();
    let (result, metrics) = resumed.finish_with_probe();

    // One canonical rendering covers every field SimResult reports.
    assert_eq!(
        reference.to_json().to_string_pretty(),
        result.to_json().to_string_pretty(),
        "rendered SimResult diverged after recovery at slot {snap_at}"
    );
    // Field-level spot checks keep failures readable.
    assert_eq!(&reference.counters, &result.counters);
    assert_eq!(&reference.misses, &result.misses);
    for (o, f) in reference.tasks.iter().zip(result.tasks.iter()) {
        assert_eq!(
            o.drift.samples(),
            f.drift.samples(),
            "drift samples of task {}",
            o.id
        );
    }
    // The resumed probe continued from the persisted registry: final
    // registries must be byte-identical snapshots.
    assert_eq!(
        ref_metrics.registry().snapshot_text(),
        metrics.registry().snapshot_text(),
        "metrics snapshots diverged after recovery at slot {snap_at}"
    );
}

/// Both drivers: the tickless default and the per-slot oracle.
fn assert_recovery_both_drivers(plan: &Plan, cfg: SimConfig, snap_at: i64) {
    let w = workload_of(plan);
    assert_recovery_matches(&w, cfg.clone(), snap_at);
    assert_recovery_matches(&w, cfg.per_slot(), snap_at);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// PD²-OI: snapshots land amid parked rule-O/I enactments on the
    /// calendar ring; restoring must preserve each pending wait.
    #[test]
    fn oi_recovery_matches_uninterrupted(plan in arb_plan(), snap_at in 1i64..HORIZON) {
        assert_recovery_both_drivers(&plan, SimConfig::oi(plan.processors, HORIZON), snap_at);
    }

    /// PD²-LJ: snapshots capture withdrawn (stale) queue entries and
    /// scheduled rule-L departures; both must survive the round trip.
    #[test]
    fn lj_recovery_matches_uninterrupted(plan in arb_plan(), snap_at in 1i64..HORIZON) {
        assert_recovery_both_drivers(
            &plan,
            SimConfig::leave_join(plan.processors, HORIZON),
            snap_at,
        );
    }

    /// Hybrids: the per-task selector state (OI-budget windows, event
    /// counters) is part of the snapshot; a restored run must make the
    /// same O-I-vs-LJ choices the uninterrupted one does.
    #[test]
    fn hybrid_recovery_matches_uninterrupted(plan in arb_plan(), snap_at in 1i64..HORIZON, nth in 1u32..4) {
        let cfg = SimConfig::oi(plan.processors, HORIZON)
            .with_scheme(Scheme::Hybrid(HybridPolicy::EveryNth(nth)));
        assert_recovery_both_drivers(&plan, cfg, snap_at);
    }

    /// Segmented execution is exactly one-shot execution, for any chunk
    /// count — every boundary passes through serialize → parse →
    /// restore.
    #[test]
    fn segmented_run_matches_one_shot(plan in arb_plan(), segments in 1u32..6) {
        let w = workload_of(&plan);
        let cfg = SimConfig::oi(plan.processors, HORIZON);
        let reference = simulate(cfg.clone(), &w);
        let segmented = run_segments(cfg, &w, segments).expect("segmented run");
        prop_assert_eq!(
            reference.to_json().to_string_pretty(),
            segmented.to_json().to_string_pretty()
        );
    }
}

/// A deterministic long-horizon sparse run interrupted mid-flight: the
/// calendar rings rotate many times, the snapshot lands between
/// far-apart events, and recovery still reproduces the run bit for
/// bit under both drivers.
#[test]
fn long_sparse_recovery_is_bit_identical() {
    let mut w = Workload::new();
    for i in 0..6u32 {
        w.join(i, i64::from(i) * 3, 1, 100 + i128::from(i) * 7);
    }
    w.reweight(0, 400, 1, 80);
    w.reweight(1, 1_000, 1, 150);
    w.delay(2, 500, 700); // past the ring window: overflow + rotation
    w.leave(3, 2_000);
    w.reweight(4, 3_000, 1, 90);
    let cfg = SimConfig::oi(4, 5_000);
    for snap_at in [499, 512, 1_024, 2_600, 4_999] {
        assert_recovery_matches(&w, cfg.clone(), snap_at);
    }
    assert_recovery_matches(&w, cfg.per_slot(), 2_600);
}

/// Crash/recover with an event journal: events admitted *after* the
/// checkpoint are journaled; recovery restores the snapshot, replays
/// the journal through the online-injection path, and finishes
/// identically to the run that never crashed.
#[test]
fn journal_replay_recovers_post_snapshot_events() {
    let mut w = Workload::new();
    for t in 0..4 {
        w.join(t, 0, 1, 6);
    }
    w.reweight(0, 40, 1, 3);
    let cfg = SimConfig::oi(2, 200);

    let late_events = [
        Event {
            at: 120,
            task: TaskId(1),
            kind: EventKind::Reweight(Weight::new(rat(1, 4))),
        },
        Event {
            at: 140,
            task: TaskId(2),
            kind: EventKind::Delay(9),
        },
        Event {
            at: 150,
            task: TaskId(3),
            kind: EventKind::Leave,
        },
    ];

    // Reference: the same online events arrive and the process lives.
    let mut reference_engine = Engine::new(cfg.clone(), &w);
    for e in &late_events {
        reference_engine.inject(*e);
    }
    reference_engine.run();
    let reference = reference_engine.finish();

    // Interrupted: checkpoint at slot 100, then the late events arrive
    // and are journaled; the process dies before simulating them.
    let mut path = std::env::temp_dir();
    path.push(format!(
        "pfair-recovery-journal-{}.jsonl",
        std::process::id()
    ));
    let mut engine = Engine::new(cfg, &w);
    let snapshot_text = snapshot_to_string(&engine.snapshot_at(100).expect("snapshot"));
    let mut journal = Journal::create(&path).expect("journal");
    for e in &late_events {
        engine.inject(*e); // the doomed process also saw them
        journal.append(e).expect("append");
    }
    drop(engine);
    drop(journal);

    // Recovery: snapshot + journal are all that survived.
    let recovered = snapshot_from_str(&snapshot_text).expect("snapshot recovers");
    let mut resumed = Engine::restore(recovered, NoopProbe).expect("restore");
    let replayed = read_journal(&path).expect("journal loads");
    assert_eq!(replayed.as_slice(), late_events.as_slice());
    replay(&mut resumed, &replayed);
    resumed.run();
    assert_eq!(
        reference.to_json().to_string_pretty(),
        resumed.finish().to_json().to_string_pretty()
    );
    std::fs::remove_file(&path).ok();
}
