//! Round-trip fuzzing of every persisted type.
//!
//! Two properties over the persistence formats:
//!
//! 1. **Canonical**: encode → decode → encode is byte-identical, for
//!    snapshot envelopes (covering the whole nested type family:
//!    engine state, tracker accumulators, rings, queue entries,
//!    selector state, config) and for journal entries (events).
//! 2. **Total**: truncated or byte-corrupted input *returns* `Err` —
//!    it never panics, and when a mutation happens to be accepted
//!    (e.g. it only touched pretty-printing whitespace) the decoded
//!    value re-encodes to the original canonical text, proving the
//!    mutation was semantically neutral.

use pfair_core::rational::rat;
use pfair_core::task::TaskId;
use pfair_core::weight::Weight;
use pfair_json::{FromJson, Json, ToJson};
use pfair_persist::{
    open, read_journal, seal, snapshot_from_str, snapshot_to_string, Journal, JOURNAL_FORMAT,
    SNAPSHOT_FORMAT,
};
use pfair_sched::admission::AdmissionPolicy;
use pfair_sched::engine::{Engine, SimConfig};
use pfair_sched::event::{Event, EventKind, Workload};
use pfair_sched::priority::TieBreak;
use pfair_sched::reweight::{HybridPolicy, Scheme};
use proptest::prelude::*;

const HORIZON: i64 = 120;

fn arb_weight() -> impl Strategy<Value = (i128, i128)> {
    (2i128..=40).prop_flat_map(|den| (1i128..=(den / 2).max(1), Just(den)))
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0i64..HORIZON, 0u32..8, 0u32..4, arb_weight(), 1u32..700).prop_map(
        |(at, task, pick, (n, d), by)| {
            let kind = match pick {
                0 => EventKind::Join(Weight::new(rat(n, d))),
                1 => EventKind::Leave,
                2 => EventKind::Reweight(Weight::new(rat(n, d))),
                _ => EventKind::Delay(by),
            };
            Event {
                at,
                task: TaskId(task),
                kind,
            }
        },
    )
}

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    (0u32..6, 1u32..5, arb_weight(), 2i64..30).prop_map(
        |(pick, n, (num, den), window)| match pick {
            0 => Scheme::Oi,
            1 => Scheme::LeaveJoin,
            2 => Scheme::Hybrid(HybridPolicy::EveryNth(n)),
            3 => Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(rat(num, den))),
            4 => Scheme::Hybrid(HybridPolicy::OiBudget { budget: n, window }),
            _ => Scheme::Hybrid(HybridPolicy::DriftFeedback(rat(num, den))),
        },
    )
}

fn arb_tie_break() -> impl Strategy<Value = TieBreak> {
    (0u32..3, prop::collection::vec((0u32..8, 0u32..10), 0..5)).prop_map(|(pick, pairs)| match pick
    {
        0 => TieBreak::TaskIdAsc,
        1 => TieBreak::TaskIdDesc,
        _ => TieBreak::Ranked(pairs.into_iter().map(|(t, r)| (TaskId(t), r)).collect()),
    })
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (1u32..=4, arb_scheme(), arb_tie_break(), 0u32..2, 0u32..2).prop_map(
        |(processors, scheme, tie_break, police, tickless)| {
            let mut cfg = SimConfig::oi(processors, HORIZON)
                .with_scheme(scheme)
                .with_tie_break(tie_break)
                .with_admission(if police == 0 {
                    AdmissionPolicy::Police
                } else {
                    AdmissionPolicy::Trusting
                });
            if tickless == 0 {
                cfg = cfg.per_slot();
            }
            cfg
        },
    )
}

/// A snapshot built from an arbitrary config and event script, taken
/// at an arbitrary slot — covers every nested persisted type with
/// organically-reachable values.
fn snapshot_text_of(cfg: SimConfig, events: &[Event], snap_at: i64) -> String {
    let mut w = Workload::new();
    // Ensure ids are dense: join every referenced task at 0 first.
    for t in 0..8 {
        w.join(t, 0, 1, 10);
    }
    for e in events {
        // Re-joining an active task is a workload error the engine
        // aborts on; every other event is tolerated in any order.
        if !matches!(e.kind, EventKind::Join(_)) {
            w.push(*e);
        }
    }
    let mut engine = Engine::new(cfg, &w);
    let snap = engine.snapshot_at(snap_at).expect("snapshot");
    snapshot_to_string(&snap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Events (the journal payload) encode canonically.
    #[test]
    fn event_encoding_is_canonical(event in arb_event()) {
        let first = event.to_json().to_string();
        let back = Event::from_json(&Json::parse(&first).expect("parse")).expect("decode");
        prop_assert_eq!(first, back.to_json().to_string());
    }

    /// Configs (schemes, tie-breaks, admission policies) encode
    /// canonically.
    #[test]
    fn config_encoding_is_canonical(cfg in arb_config()) {
        let first = cfg.to_json().to_string();
        let back = SimConfig::from_json(&Json::parse(&first).expect("parse")).expect("decode");
        prop_assert_eq!(first, back.to_json().to_string());
    }

    /// Full snapshot envelopes encode canonically: encode → decode →
    /// encode is byte-identical.
    #[test]
    fn snapshot_encoding_is_canonical(
        cfg in arb_config(),
        events in prop::collection::vec(arb_event(), 0..10),
        snap_at in 1i64..HORIZON,
    ) {
        let first = snapshot_text_of(cfg, &events, snap_at);
        let snap = snapshot_from_str(&first).expect("decode");
        prop_assert_eq!(first, snapshot_to_string(&snap));
    }

    /// Truncated snapshots are errors, never panics.
    #[test]
    fn truncated_snapshot_is_err(
        events in prop::collection::vec(arb_event(), 0..6),
        snap_at in 1i64..HORIZON,
        cut_frac in 0u32..1000,
    ) {
        let text = snapshot_text_of(SimConfig::oi(2, HORIZON), &events, snap_at);
        let cut = (text.len() * cut_frac as usize) / 1000;
        if cut < text.len() {
            prop_assert!(snapshot_from_str(&text[..cut]).is_err());
        }
    }

    /// Byte-level corruption either errs or is provably neutral: an
    /// accepted mutation re-encodes to the original canonical text.
    #[test]
    fn corrupted_snapshot_never_panics(
        events in prop::collection::vec(arb_event(), 0..6),
        snap_at in 1i64..HORIZON,
        pos in 0usize..100_000,
        byte in 0u8..=255,
    ) {
        let text = snapshot_text_of(SimConfig::oi(2, HORIZON), &events, snap_at);
        let mut bytes = text.clone().into_bytes();
        let i = pos % bytes.len();
        bytes[i] = byte;
        // Invalid UTF-8 cannot even reach the parser; skip those flips.
        if let Ok(mutated) = String::from_utf8(bytes) {
            match snapshot_from_str(&mutated) {
                Err(_) => {}
                Ok(snap) => prop_assert_eq!(
                    snapshot_to_string(&snap),
                    text,
                    "accepted mutation changed the payload"
                ),
            }
        }
    }

    /// Journal corruption never panics either: any byte flip in any
    /// line yields `Err` or a journal equal to the original.
    #[test]
    fn corrupted_journal_never_panics(
        events in prop::collection::vec(arb_event(), 1..8),
        pos in 0usize..100_000,
        byte in 0u8..=255,
    ) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "pfair-fuzz-journal-{}-{pos}-{byte}.jsonl",
            std::process::id()
        ));
        let mut journal = Journal::create(&path).expect("create");
        for e in &events {
            journal.append(e).expect("append");
        }
        let text = std::fs::read_to_string(&path).expect("read");
        let mut bytes = text.clone().into_bytes();
        let i = pos % bytes.len();
        bytes[i] = byte;
        match String::from_utf8(bytes) {
            Err(_) => {}
            Ok(mutated) => {
                std::fs::write(&path, &mutated).expect("write");
                match read_journal(&path) {
                    Err(_) => {}
                    Ok(recovered) => prop_assert_eq!(
                        recovered.as_slice(),
                        events.as_slice(),
                        "accepted mutation changed the journal"
                    ),
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// The envelope rejects wrong formats and future versions outright.
    #[test]
    fn envelope_rejects_foreign_and_future_artifacts(n in 0u64..1000) {
        let body = pfair_json::obj([("n", n.to_json())]);
        let sealed = seal(SNAPSHOT_FORMAT, body.clone());
        prop_assert!(open(JOURNAL_FORMAT, &sealed).is_err());
        let future = sealed.to_string().replace("\"version\":1", "\"version\":2");
        let reparsed = Json::parse(&future).expect("parse");
        prop_assert!(open(SNAPSHOT_FORMAT, &reparsed).is_err());
    }
}
