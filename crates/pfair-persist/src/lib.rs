//! # pfair-persist
//!
//! Durable simulation state for the PD² engine: versioned, checksummed
//! **snapshots**, an append-only **event journal**, and a **segmented
//! runner** that executes a long horizon as resumable chunks.
//!
//! ## Envelope format
//!
//! Both artifact kinds share one envelope: a JSON object with a
//! `format` tag, a `version` number, an FNV-1a-64 `checksum` of the
//! canonical *compact* encoding of the body, and the `body` itself.
//! [`open`] re-derives the checksum from the parsed body — whitespace
//! and file-level pretty-printing are outside the integrity boundary,
//! while any semantic change to the body (a digit, a flag, a dropped
//! field) is caught. Unknown formats and future versions are refused,
//! never guessed at.
//!
//! ## Journal format
//!
//! A journal is JSONL: one header envelope line, then one line per
//! admitted mutation (join/leave/reweight/delay), each a `{"seq",
//! "event", "checksum"}` record whose checksum covers the compact
//! `{"seq", "event"}` prefix. Sequence numbers are dense from 0, so
//! truncation, reordering, and line-level corruption are all detected
//! on load. Replay is [`Engine::inject`] in sequence order — exactly
//! the path online (executor-fed) events take.
//!
//! ## Persistence invariant
//!
//! Snapshot at slot `k` → serialize → parse → restore → run to the
//! horizon is **bit-identical** to the uninterrupted run (results,
//! counters, drift samples, metrics registries). `run_segments` proves
//! the invariant end-to-end by forcing every chunk boundary through
//! the full serialize/parse/restore round trip; the
//! `recovery_equivalence` suite pins it under randomized reweighting
//! scripts and both engine drivers.

// Conventional-lint mirror of the audit's no-float and no-panic
// invariants, as in the other scheduling crates (test code exempt).
#![cfg_attr(not(test), warn(clippy::disallowed_types, clippy::disallowed_methods))]

use pfair_core::time::Slot;
use pfair_json::{obj, FromJson, Json, JsonError, ToJson};
use pfair_obs::{NoopProbe, Probe};
use pfair_sched::engine::{Engine, EngineSnapshot, SimConfig};
use pfair_sched::event::{Event, Workload};
use pfair_sched::trace::SimResult;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Format tag of snapshot envelopes.
pub const SNAPSHOT_FORMAT: &str = "pfair-snapshot";
/// Format tag of journal headers.
pub const JOURNAL_FORMAT: &str = "pfair-journal";
/// Current (and only) version of both formats.
pub const FORMAT_VERSION: i128 = 1;

/// Failure while persisting or recovering simulation state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Filesystem failure at `path`.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error, rendered.
        message: String,
    },
    /// Structural failure: bad envelope, checksum mismatch, decode
    /// error, or a snapshot that fails cross-field validation.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            PersistError::Format(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<JsonError> for PersistError {
    fn from(e: JsonError) -> PersistError {
        PersistError::Format(e.message)
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> PersistError {
    PersistError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// FNV-1a-64 over a byte string: the integrity checksum of every
/// persisted artifact. Small, dependency-free, and byte-exact across
/// platforms — this is a corruption detector, not a cryptographic
/// commitment.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The checksum of a body: FNV-1a-64 of its compact canonical
/// encoding, as 16 lowercase hex digits.
fn checksum_of(body: &Json) -> String {
    format!("{:016x}", fnv1a64(body.to_string().as_bytes()))
}

/// Wraps a body in a versioned, checksummed envelope.
pub fn seal(format: &str, body: Json) -> Json {
    obj([
        ("format", format.to_string().to_json()),
        ("version", Json::Int(FORMAT_VERSION)),
        ("checksum", checksum_of(&body).to_json()),
        ("body", body),
    ])
}

/// Opens an envelope: checks the format tag, the version, and the
/// checksum, and returns the body. Every failure is an `Err`, never a
/// panic — this is the untrusted-input boundary.
pub fn open(format: &str, envelope: &Json) -> Result<Json, PersistError> {
    let tag: String = envelope.field("format")?;
    if tag != format {
        return Err(PersistError::Format(format!(
            "expected a `{format}` artifact, found `{tag}`"
        )));
    }
    let version = envelope
        .get("version")
        .and_then(Json::as_int)
        .ok_or_else(|| PersistError::Format("missing format version".to_string()))?;
    if version != FORMAT_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported {format} version {version} (supported: {FORMAT_VERSION})"
        )));
    }
    let stated: String = envelope.field("checksum")?;
    let body = envelope
        .get("body")
        .ok_or_else(|| PersistError::Format("missing envelope body".to_string()))?;
    let actual = checksum_of(body);
    if stated != actual {
        return Err(PersistError::Format(format!(
            "checksum mismatch: envelope states {stated}, body hashes to {actual}"
        )));
    }
    Ok(body.clone())
}

// ---- snapshots -------------------------------------------------------

/// Serializes a snapshot into its on-disk envelope text (pretty-printed;
/// the checksum covers the compact body, so formatting is free).
pub fn snapshot_to_string(snapshot: &EngineSnapshot) -> String {
    let mut out = seal(SNAPSHOT_FORMAT, snapshot.to_json()).to_string_pretty();
    out.push('\n');
    out
}

/// Parses and validates a snapshot from envelope text.
pub fn snapshot_from_str(text: &str) -> Result<EngineSnapshot, PersistError> {
    let envelope = Json::parse(text)?;
    let body = open(SNAPSHOT_FORMAT, &envelope)?;
    Ok(EngineSnapshot::from_json(&body)?)
}

/// Writes a snapshot envelope to `path`.
pub fn write_snapshot(path: &Path, snapshot: &EngineSnapshot) -> Result<(), PersistError> {
    fs::write(path, snapshot_to_string(snapshot)).map_err(|e| io_err(path, &e))
}

/// Reads, verifies, and decodes a snapshot envelope from `path`.
pub fn read_snapshot(path: &Path) -> Result<EngineSnapshot, PersistError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    snapshot_from_str(&text)
}

// ---- journal ---------------------------------------------------------

/// An append-only journal of admitted workload mutations.
///
/// Create with [`Journal::create`], append [`Event`]s as they are
/// admitted, and recover them later with [`read_journal`] /
/// [`replay`]. Each line is individually checksummed and sequence
/// numbers are dense, so any truncation or corruption surfaces on
/// load.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    next_seq: u64,
}

fn entry_body(seq: u64, event: &Event) -> Json {
    obj([("seq", seq.to_json()), ("event", event.to_json())])
}

fn entry_line(seq: u64, event: &Event) -> Json {
    let body = entry_body(seq, event);
    obj([
        ("seq", seq.to_json()),
        ("event", event.to_json()),
        ("checksum", checksum_of(&body).to_json()),
    ])
}

impl Journal {
    /// Creates (truncating) a journal at `path` and writes its header.
    pub fn create(path: &Path) -> Result<Journal, PersistError> {
        let header = seal(JOURNAL_FORMAT, Json::Null);
        let mut text = header.to_string();
        text.push('\n');
        fs::write(path, text).map_err(|e| io_err(path, &e))?;
        Ok(Journal {
            path: path.to_path_buf(),
            next_seq: 0,
        })
    }

    /// Opens an existing journal for appending, after fully validating
    /// it. Returns the journal (positioned after the last entry) and
    /// the events recovered so far.
    pub fn open_append(path: &Path) -> Result<(Journal, Vec<Event>), PersistError> {
        let events = read_journal(path)?;
        let next_seq = events.len() as u64; // audit: allow(lossy-cast, entry counts are far below 2^64)
        Ok((
            Journal {
                path: path.to_path_buf(),
                next_seq,
            },
            events,
        ))
    }

    /// Appends one admitted event and flushes it to disk.
    pub fn append(&mut self, event: &Event) -> Result<(), PersistError> {
        let mut line = entry_line(self.next_seq, event).to_string();
        line.push('\n');
        let mut file = fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, &e))?;
        file.write_all(line.as_bytes())
            .map_err(|e| io_err(&self.path, &e))?;
        self.next_seq += 1;
        Ok(())
    }

    /// Number of entries written so far.
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// `true` iff nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }
}

/// Loads and fully validates a journal: header envelope, per-line
/// checksums, and dense sequence numbers. Any defect is an `Err`.
pub fn read_journal(path: &Path) -> Result<Vec<Event>, PersistError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| PersistError::Format("empty journal (missing header)".to_string()))?;
    let header = Json::parse(header_line)?;
    let header_body = open(JOURNAL_FORMAT, &header)?;
    if header_body != Json::Null {
        return Err(PersistError::Format(
            "journal header carries an unexpected body".to_string(),
        ));
    }
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = Json::parse(line)
            .map_err(|e| PersistError::Format(format!("journal line {}: {}", i + 2, e.message)))?;
        let seq: u64 = entry.field("seq")?;
        let expected = events.len() as u64; // audit: allow(lossy-cast, entry counts are far below 2^64)
        if seq != expected {
            return Err(PersistError::Format(format!(
                "journal sequence gap: expected {expected}, found {seq}"
            )));
        }
        let event: Event = entry.field("event")?;
        let stated: String = entry.field("checksum")?;
        let actual = checksum_of(&entry_body(seq, &event));
        if stated != actual {
            return Err(PersistError::Format(format!(
                "journal entry {seq} checksum mismatch: stated {stated}, hashes to {actual}"
            )));
        }
        events.push(event);
    }
    Ok(events)
}

/// Replays journaled events into a (typically restored) engine, in
/// sequence order, through the same injection path live drivers use.
/// Past-dated events fire at the engine's next step, exactly as they
/// would have when first injected.
pub fn replay<P: Probe>(engine: &mut Engine<P>, events: &[Event]) {
    for event in events {
        engine.inject(*event);
    }
}

// ---- segmented runs --------------------------------------------------

/// Runs `config` over `workload` as `segments` resumable chunks.
///
/// At every chunk boundary the engine is snapshotted, serialized to
/// envelope text, parsed back, verified, and **restored into a fresh
/// engine** — so the returned result proves the full persistence round
/// trip at each boundary, not just in-memory cloning. The result is
/// bit-identical to a straight [`pfair_sched::engine::simulate`] run
/// (the recovery suite pins this).
///
/// History-mode configurations are refused, as by
/// [`Engine::snapshot`]; `segments` must be at least 1.
pub fn run_segments(
    config: SimConfig,
    workload: &Workload,
    segments: u32,
) -> Result<SimResult, PersistError> {
    if segments == 0 {
        return Err(PersistError::Format(
            "segmented run needs at least one segment".to_string(),
        ));
    }
    let horizon = config.horizon;
    let mut engine = Engine::new(config, workload);
    for i in 1..segments {
        // Boundary i sits at ⌊horizon·i/segments⌋: monotone, and the
        // final chunk always ends exactly at the horizon.
        // audit: allow(panic-reach, segments is validated nonzero above, so the divisor cannot be zero)
        let at = horizon * Slot::from(i) / Slot::from(segments);
        let snap = engine.snapshot_at(at).map_err(PersistError::Format)?;
        let restored = snapshot_from_str(&snapshot_to_string(&snap))?;
        engine = Engine::restore(restored, NoopProbe).map_err(PersistError::Format)?;
    }
    engine.snapshot_at(horizon).map_err(PersistError::Format)?; // drive the last chunk, prove it snapshots clean
    Ok(engine.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;
    use pfair_core::task::TaskId;
    use pfair_core::weight::Weight;
    use pfair_sched::engine::simulate;
    use pfair_sched::event::EventKind;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pfair-persist-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_workload() -> Workload {
        let mut w = Workload::new();
        for t in 0..5 {
            w.join(t, 0, 1, 5);
        }
        w.reweight(0, 8, 2, 5);
        w.leave(1, 12);
        w.delay(2, 10, 3);
        w
    }

    #[test]
    fn envelope_round_trips_and_detects_tampering() {
        let body = obj([("x", 7u64.to_json())]);
        let sealed = seal(SNAPSHOT_FORMAT, body.clone());
        assert_eq!(open(SNAPSHOT_FORMAT, &sealed).unwrap(), body);
        // Wrong format tag.
        assert!(open(JOURNAL_FORMAT, &sealed).is_err());
        // Tampered body.
        let text = sealed.to_string().replace("\"x\":7", "\"x\":8");
        let reparsed = Json::parse(&text).unwrap();
        assert!(matches!(
            open(SNAPSHOT_FORMAT, &reparsed),
            Err(PersistError::Format(m)) if m.contains("checksum mismatch")
        ));
    }

    #[test]
    fn snapshot_file_round_trips() {
        let path = tmp("snap.json");
        let mut engine = Engine::new(SimConfig::oi(2, 30), &sample_workload());
        let snap = engine.snapshot_at(9).unwrap();
        write_snapshot(&path, &snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(snap.to_json(), back.to_json());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_snapshot_is_an_error_not_a_panic() {
        let mut engine = Engine::new(SimConfig::oi(2, 30), &sample_workload());
        let text = snapshot_to_string(&engine.snapshot_at(9).unwrap());
        for cut in [1, text.len() / 4, text.len() / 2, text.len() - 2] {
            assert!(snapshot_from_str(&text[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn journal_appends_and_replays() {
        let path = tmp("journal.jsonl");
        let mut journal = Journal::create(&path).unwrap();
        let events = [
            Event {
                at: 3,
                task: TaskId(0),
                kind: EventKind::Reweight(Weight::new(rat(1, 4))),
            },
            Event {
                at: 5,
                task: TaskId(1),
                kind: EventKind::Leave,
            },
        ];
        for e in &events {
            journal.append(e).unwrap();
        }
        assert_eq!(journal.len(), 2);
        let loaded = read_journal(&path).unwrap();
        assert_eq!(loaded, events);
        // Reopening for append continues the sequence.
        let (mut journal, recovered) = Journal::open_append(&path).unwrap();
        assert_eq!(recovered, events);
        journal
            .append(&Event {
                at: 7,
                task: TaskId(2),
                kind: EventKind::Delay(2),
            })
            .unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_journal_line_is_rejected() {
        let path = tmp("journal-bad.jsonl");
        let mut journal = Journal::create(&path).unwrap();
        journal
            .append(&Event {
                at: 3,
                task: TaskId(0),
                kind: EventKind::Leave,
            })
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip the event's slot without updating the checksum.
        let bad = text.replace("\"at\":3", "\"at\":4");
        assert_ne!(text, bad);
        std::fs::write(&path, bad).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(PersistError::Format(m)) if m.contains("checksum mismatch")
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_sequence_gap_is_rejected() {
        let path = tmp("journal-gap.jsonl");
        let mut journal = Journal::create(&path).unwrap();
        let e = Event {
            at: 3,
            task: TaskId(0),
            kind: EventKind::Leave,
        };
        journal.append(&e).unwrap();
        journal.append(&e).unwrap();
        // Drop the first entry line (header stays): seq now starts at 1.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(1);
        std::fs::write(&path, lines.join("\n")).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(PersistError::Format(m)) if m.contains("sequence gap")
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segmented_run_matches_one_shot() {
        let config = SimConfig::oi(2, 60);
        let w = sample_workload();
        let reference = simulate(config.clone(), &w);
        for segments in [1, 2, 3, 7] {
            let segmented = run_segments(config.clone(), &w, segments).unwrap();
            assert_eq!(
                reference.to_json().to_string_pretty(),
                segmented.to_json().to_string_pretty(),
                "{segments} segments"
            );
        }
    }

    #[test]
    fn history_mode_segmented_run_is_refused() {
        let config = SimConfig::oi(2, 60).with_history();
        assert!(run_segments(config, &sample_workload(), 3).is_err());
        assert!(run_segments(SimConfig::oi(2, 60), &sample_workload(), 0).is_err());
    }
}
