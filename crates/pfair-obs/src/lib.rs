//! # pfair-obs
//!
//! Structured tracing and exact-integer metrics for the PD² engine —
//! the observability layer behind the paper's efficiency-versus-
//! accuracy question. The aggregate `Counters` in `pfair-sched` can
//! say *how many* queue operations and halts a run cost; this crate
//! says *which reweighting event* caused each of them.
//!
//! Three pieces:
//!
//! * [`Probe`] — a statically dispatched event tap the engine and
//!   executor are generic over. The default [`NoopProbe`] compiles
//!   every hook to nothing (the `obs_overhead` bench in `crates/bench`
//!   guards that it stays within noise of a probe-free engine).
//! * [`Registry`]/[`MetricsProbe`] — exact-integer counters and
//!   power-of-two-bucket histograms with deterministic text/JSON
//!   snapshots; no floats anywhere, so the crate sits inside
//!   `pfair-audit`'s strict lint scope.
//! * [`TraceRecorder`] — records the typed event stream, attributes
//!   direct *and deferred* cost to each reweighting event
//!   ([`ReweightSpan`]), and exports Chrome trace-event JSON
//!   ([`TraceRecorder::chrome_trace`]) viewable in `chrome://tracing`
//!   or Perfetto.
//!
//! Combine probes with [`Fanout`] to record a trace and aggregate
//! metrics in the same run.

#![cfg_attr(not(test), warn(clippy::disallowed_types, clippy::disallowed_methods))]

pub mod chrome;
pub mod flight;
pub mod metrics;
pub mod probe;
pub mod slo;

pub use chrome::{ObsEvent, ReweightSpan, TraceRecorder};
pub use flight::{FlightConfig, FlightIncident, FlightRecorder, FlightTrigger};
pub use metrics::{Histogram, MetricsProbe, Registry};
pub use probe::{
    Fanout, NoopProbe, Probe, ReleaseRec, ReweightCost, Rule, SpanDigest, TaskSpanDelta,
};
pub use slo::{SloBreach, SloConfig, SloKind, SloMonitor};
