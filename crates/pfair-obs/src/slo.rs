//! SLO watermark monitor: sliding-window miss counts, drift budget,
//! and reweight-latency thresholds — with exact breach records.
//!
//! [`SloMonitor`] is a span-aware [`Probe`] that watches the three
//! service-level signals the paper's trade-off is about:
//!
//! * **deadline misses** over a sliding window of `window` slots,
//! * **drift** — the exact Eqn (5) samples at era-opening releases,
//!   against a rational budget,
//! * **reweight latency** — initiation → enactment, against a slot
//!   threshold.
//!
//! Every threshold crossing is recorded as a [`SloBreach`] with the
//! exact observed value (integers and [`Rational`]s — no floats, no
//! sampling), and high-watermarks are kept for each signal. The
//! monitor composes with horizon-scale batching for free: verified
//! busy spans contain no misses, no reweights, and no era openings by
//! construction, so a span contributes nothing and costs O(1).
//!
//! Rendered by [`SloMonitor::report`] and the `pfair slo` subcommand;
//! serialized by [`SloMonitor::to_json`].

use crate::probe::{Probe, ReleaseRec, ReweightCost, Rule, SpanDigest};
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_json::{obj, Json, ToJson};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Breach records kept before further crossings are only counted.
const MAX_BREACH_RECORDS: usize = 64;

/// SLO thresholds.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Sliding-window width in slots for the miss-rate signal.
    pub window: Slot,
    /// Misses tolerated within one window; one more is a breach.
    pub max_misses: u64,
    /// Drift budget: a sample with `|drift| > budget` is a breach.
    /// `None` disables the signal (watermarks are still kept).
    pub drift_budget: Option<Rational>,
    /// Maximum initiation→enactment latency in slots; more is a
    /// breach. `None` disables the signal.
    pub max_reweight_latency: Option<u64>,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            window: 1000,
            max_misses: 0,
            drift_budget: None,
            max_reweight_latency: None,
        }
    }
}

/// Which SLO signal was breached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// Windowed miss count exceeded `max_misses`.
    MissRate,
    /// A drift sample exceeded the budget.
    DriftBudget,
    /// A reweight's latency exceeded the threshold.
    ReweightLatency,
}

impl SloKind {
    /// Canonical label (`"miss_rate"`, `"drift_budget"`,
    /// `"reweight_latency"`).
    pub fn label(self) -> &'static str {
        match self {
            SloKind::MissRate => "miss_rate",
            SloKind::DriftBudget => "drift_budget",
            SloKind::ReweightLatency => "reweight_latency",
        }
    }
}

/// One exact threshold crossing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloBreach {
    /// The breached signal.
    pub kind: SloKind,
    /// Slot the crossing was observed at.
    pub t: Slot,
    /// Exact observed value (windowed miss count, `|drift|`, or
    /// latency in slots — integers embed losslessly).
    pub observed: Rational,
    /// The configured threshold it crossed.
    pub threshold: Rational,
}

impl ToJson for SloBreach {
    fn to_json(&self) -> Json {
        obj([
            ("kind", Json::Str(self.kind.label().into())),
            ("t", Json::Int(i128::from(self.t))),
            ("observed", self.observed.to_json()),
            ("threshold", self.threshold.to_json()),
        ])
    }
}

/// The SLO monitor probe. See the module docs.
#[derive(Clone, Debug)]
pub struct SloMonitor {
    cfg: SloConfig,
    /// Miss instants still inside the sliding window.
    miss_times: VecDeque<Slot>,
    /// Whether the miss window is currently above threshold (so one
    /// excursion records one breach, not one per miss).
    miss_excursion: bool,
    breaches: Vec<SloBreach>,
    /// Crossings beyond [`MAX_BREACH_RECORDS`], counted not stored.
    suppressed: u64,
    misses_total: u64,
    peak_window_misses: u64,
    peak_window_at: Slot,
    max_abs_drift: Rational,
    max_abs_drift_at: Slot,
    drift_samples: u64,
    max_latency: u64,
    max_latency_at: Slot,
}

impl Default for SloMonitor {
    fn default() -> SloMonitor {
        SloMonitor::new(SloConfig::default())
    }
}

impl SloMonitor {
    /// A monitor with the given thresholds.
    pub fn new(cfg: SloConfig) -> SloMonitor {
        SloMonitor {
            cfg,
            miss_times: VecDeque::new(),
            miss_excursion: false,
            breaches: Vec::new(),
            suppressed: 0,
            misses_total: 0,
            peak_window_misses: 0,
            peak_window_at: 0,
            max_abs_drift: Rational::ZERO,
            max_abs_drift_at: 0,
            drift_samples: 0,
            max_latency: 0,
            max_latency_at: 0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// All recorded breaches, in observation order.
    pub fn breaches(&self) -> &[SloBreach] {
        &self.breaches
    }

    /// Crossings that were counted but not stored (record cap).
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Total deadline misses observed.
    pub fn misses_total(&self) -> u64 {
        self.misses_total
    }

    /// High-watermark of the windowed miss count, with its slot.
    pub fn peak_window_misses(&self) -> (u64, Slot) {
        (self.peak_window_misses, self.peak_window_at)
    }

    /// High-watermark of `|drift|` over all samples, with its slot.
    pub fn max_abs_drift(&self) -> (Rational, Slot) {
        (self.max_abs_drift, self.max_abs_drift_at)
    }

    /// High-watermark of reweight latency in slots, with its
    /// enactment slot.
    pub fn max_reweight_latency(&self) -> (u64, Slot) {
        (self.max_latency, self.max_latency_at)
    }

    /// `true` when no signal ever crossed its threshold.
    pub fn is_clean(&self) -> bool {
        self.breaches.is_empty() && self.suppressed == 0
    }

    fn record_breach(&mut self, kind: SloKind, t: Slot, observed: Rational, threshold: Rational) {
        if self.breaches.len() >= MAX_BREACH_RECORDS {
            self.suppressed = self.suppressed.saturating_add(1);
            return;
        }
        self.breaches.push(SloBreach {
            kind,
            t,
            observed,
            threshold,
        });
    }

    /// The monitor state as JSON: thresholds, watermarks, breaches.
    pub fn to_json(&self) -> Json {
        obj([
            (
                "config",
                obj([
                    ("window", Json::Int(i128::from(self.cfg.window))),
                    ("max_misses", Json::Int(i128::from(self.cfg.max_misses))),
                    ("drift_budget", self.cfg.drift_budget.to_json()),
                    (
                        "max_reweight_latency",
                        self.cfg.max_reweight_latency.map(i128::from).to_json(),
                    ),
                ]),
            ),
            (
                "watermarks",
                obj([
                    ("misses_total", Json::Int(i128::from(self.misses_total))),
                    (
                        "peak_window_misses",
                        Json::Int(i128::from(self.peak_window_misses)),
                    ),
                    ("peak_window_at", Json::Int(i128::from(self.peak_window_at))),
                    ("max_abs_drift", self.max_abs_drift.to_json()),
                    (
                        "max_abs_drift_at",
                        Json::Int(i128::from(self.max_abs_drift_at)),
                    ),
                    ("drift_samples", Json::Int(i128::from(self.drift_samples))),
                    (
                        "max_reweight_latency",
                        Json::Int(i128::from(self.max_latency)),
                    ),
                    (
                        "max_reweight_latency_at",
                        Json::Int(i128::from(self.max_latency_at)),
                    ),
                ]),
            ),
            (
                "breaches",
                Json::Array(self.breaches.iter().map(ToJson::to_json).collect()),
            ),
            ("suppressed", Json::Int(i128::from(self.suppressed))),
        ])
    }

    /// A human-readable report of thresholds, watermarks, and
    /// breaches.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "SLO report (window {} slots)", self.cfg.window);
        let _ = writeln!(
            out,
            "  misses     total {:>6}  peak {}/window at slot {}  threshold {}",
            self.misses_total, self.peak_window_misses, self.peak_window_at, self.cfg.max_misses
        );
        let budget = self
            .cfg
            .drift_budget
            .map_or("none".to_string(), |b| b.to_string());
        let _ = writeln!(
            out,
            "  drift      max |drift| {} at slot {}  over {} samples  budget {}",
            self.max_abs_drift, self.max_abs_drift_at, self.drift_samples, budget
        );
        let thr = self
            .cfg
            .max_reweight_latency
            .map_or("none".to_string(), |v| v.to_string());
        let _ = writeln!(
            out,
            "  reweight   max latency {} slots at slot {}  threshold {}",
            self.max_latency, self.max_latency_at, thr
        );
        if self.is_clean() {
            let _ = writeln!(out, "  status     OK — no SLO breaches");
        } else {
            let _ = writeln!(
                out,
                "  status     {} breach(es){}",
                self.breaches.len(),
                if self.suppressed > 0 {
                    format!(" (+{} suppressed)", self.suppressed)
                } else {
                    String::new()
                }
            );
            for b in &self.breaches {
                let _ = writeln!(
                    out,
                    "    [{}] at slot {}: observed {} > threshold {}",
                    b.kind.label(),
                    b.t,
                    b.observed,
                    b.threshold
                );
            }
        }
        out
    }

    fn prune_window(&mut self, t: Slot) {
        if let Some(cutoff) = t.checked_sub(self.cfg.window) {
            while self.miss_times.front().is_some_and(|&f| f <= cutoff) {
                self.miss_times.pop_front();
            }
        }
    }
}

impl Probe for SloMonitor {
    /// Span-aware: verified spans contain no misses, reweights, or
    /// era openings, so a span contributes nothing to any signal.
    const SPAN_AWARE: bool = true;

    // Spans are free: override the replay defaults with O(1) no-ops.
    fn on_quiet_span(&mut self, _from: Slot, _to: Slot, _holes: u64) {}
    fn on_release_batch(&mut self, _t: Slot, _releases: &[ReleaseRec]) {}
    fn on_busy_span_jump(&mut self, _t0: Slot, _t1: Slot, _periods: u64, _digest: &SpanDigest) {}

    fn on_miss(&mut self, _task: TaskId, _index: u64, t: Slot, _deadline: Slot) {
        self.misses_total = self.misses_total.saturating_add(1);
        self.prune_window(t);
        self.miss_times.push_back(t);
        let in_window = u64::try_from(self.miss_times.len()).unwrap_or(u64::MAX);
        if in_window > self.peak_window_misses {
            self.peak_window_misses = in_window;
            self.peak_window_at = t;
        }
        if in_window > self.cfg.max_misses {
            if !self.miss_excursion {
                self.miss_excursion = true;
                self.record_breach(
                    SloKind::MissRate,
                    t,
                    Rational::new(i128::from(in_window), 1),
                    Rational::new(i128::from(self.cfg.max_misses), 1),
                );
            }
        } else {
            self.miss_excursion = false;
        }
    }

    fn on_drift_sample(&mut self, _task: TaskId, t: Slot, drift: Rational) {
        self.drift_samples = self.drift_samples.saturating_add(1);
        let abs = drift.abs();
        if abs > self.max_abs_drift {
            self.max_abs_drift = abs;
            self.max_abs_drift_at = t;
        }
        if let Some(budget) = self.cfg.drift_budget {
            if abs > budget {
                self.record_breach(SloKind::DriftBudget, t, abs, budget);
            }
        }
    }

    fn on_reweight_initiated(
        &mut self,
        _task: TaskId,
        _t: Slot,
        _rule: Rule,
        _cost: ReweightCost,
        _enact_at: Slot,
    ) {
        // Latency is measured at enactment (actual, not projected).
    }

    fn on_reweight_enacted(&mut self, _task: TaskId, t: Slot, initiated_at: Slot) {
        let latency = t
            .checked_sub(initiated_at)
            .and_then(|d| u64::try_from(d).ok())
            .unwrap_or(0);
        if latency > self.max_latency {
            self.max_latency = latency;
            self.max_latency_at = t;
        }
        if let Some(thr) = self.cfg.max_reweight_latency {
            if latency > thr {
                self.record_breach(
                    SloKind::ReweightLatency,
                    t,
                    Rational::new(i128::from(latency), 1),
                    Rational::new(i128::from(thr), 1),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    #[test]
    fn miss_window_slides_and_records_one_breach_per_excursion() {
        let mut m = SloMonitor::new(SloConfig {
            window: 10,
            max_misses: 1,
            ..SloConfig::default()
        });
        m.on_miss(TaskId(0), 1, 5, 5);
        assert!(m.is_clean(), "one miss is within threshold");
        m.on_miss(TaskId(0), 2, 8, 8); // 2 misses in (−2, 8] → breach
        assert_eq!(m.breaches().len(), 1);
        assert_eq!(m.breaches()[0].kind, SloKind::MissRate);
        assert_eq!(m.breaches()[0].observed, rat(2, 1));
        m.on_miss(TaskId(0), 3, 9, 9); // still in excursion: no new record
        assert_eq!(m.breaches().len(), 1);
        assert_eq!(m.peak_window_misses(), (3, 9));
        // Far later: window slid, count resets, new excursion records.
        m.on_miss(TaskId(0), 4, 100, 100);
        m.on_miss(TaskId(0), 5, 101, 101);
        assert_eq!(m.breaches().len(), 2);
        assert_eq!(m.misses_total(), 5);
    }

    #[test]
    fn drift_budget_watermarks_and_breaches_exactly() {
        let mut m = SloMonitor::new(SloConfig {
            drift_budget: Some(rat(1, 2)),
            ..SloConfig::default()
        });
        m.on_drift_sample(TaskId(0), 10, rat(1, 3));
        assert!(m.is_clean());
        m.on_drift_sample(TaskId(1), 20, rat(-3, 4));
        assert_eq!(m.breaches().len(), 1);
        let b = m.breaches()[0];
        assert_eq!(b.kind, SloKind::DriftBudget);
        assert_eq!(b.observed, rat(3, 4));
        assert_eq!(b.threshold, rat(1, 2));
        assert_eq!(m.max_abs_drift(), (rat(3, 4), 20));
    }

    #[test]
    fn reweight_latency_measured_at_enactment() {
        let mut m = SloMonitor::new(SloConfig {
            max_reweight_latency: Some(4),
            ..SloConfig::default()
        });
        m.on_reweight_enacted(TaskId(0), 13, 10); // latency 3: fine
        assert!(m.is_clean());
        m.on_reweight_enacted(TaskId(0), 29, 20); // latency 9: breach
        assert_eq!(m.breaches().len(), 1);
        assert_eq!(m.breaches()[0].observed, rat(9, 1));
        assert_eq!(m.max_reweight_latency(), (9, 29));
    }

    #[test]
    fn report_and_json_carry_watermarks_and_breaches() {
        let mut m = SloMonitor::new(SloConfig {
            window: 50,
            max_misses: 0,
            drift_budget: Some(rat(2, 1)),
            max_reweight_latency: Some(10),
        });
        m.on_miss(TaskId(0), 1, 40, 40);
        m.on_drift_sample(TaskId(0), 41, rat(5, 2));
        let report = m.report();
        assert!(report.contains("SLO report (window 50 slots)"));
        assert!(report.contains("2 breach(es)"));
        assert!(report.contains("[miss_rate] at slot 40"));
        assert!(report.contains("[drift_budget] at slot 41: observed 5/2 > threshold 2"));

        let json = m.to_json();
        let text = json.to_string_pretty();
        let parsed = Json::parse(&text).expect("report json parses");
        let Some(Json::Array(breaches)) = parsed.get("breaches") else {
            panic!("breaches missing");
        };
        assert_eq!(breaches.len(), 2);
        assert_eq!(
            parsed
                .get("watermarks")
                .and_then(|w| w.get("misses_total"))
                .and_then(Json::as_int),
            Some(1)
        );
    }

    /// Spans deliver nothing to the monitor — the hooks it implements
    /// never fire inside a verified span, and the span hooks it
    /// inherits are free.
    #[test]
    fn spans_contribute_nothing() {
        let mut m = SloMonitor::default();
        m.on_quiet_span(0, 1_000_000, 0);
        m.on_busy_span_jump(0, 12, 100_000, &crate::probe::SpanDigest::default());
        assert!(m.is_clean());
        assert_eq!(m.misses_total(), 0);
    }
}
