//! The [`Probe`] trait: the engine's structured-event tap.
//!
//! The engine is generic over a probe (`Engine<P: Probe = NoopProbe>`),
//! so every hook below is resolved by **static dispatch**. With the
//! default [`NoopProbe`] each call monomorphizes to an empty inlined
//! body and the compiled hot path is identical to a probe-free engine —
//! an invariant the `obs_overhead` benchmark in `crates/bench` guards
//! (NoopProbe within noise of the default entry point at 10k/100k-slot
//! horizons).
//!
//! Hooks fire at the same slot-pipeline boundaries the paper's rules
//! are stated at: slot starts, subtask releases/schedules/preemptions,
//! rule-O halts, reweight initiation/enactment, and the closed-form
//! `advance_to` tracker jumps of the event-driven bookkeeping. Stale
//! queue-entry discards ([`Probe::on_stale_pop`],
//! [`Probe::on_stale_drop`]) are reported individually so a recorder
//! can attribute the *deferred* queue cost of a reweighting event (the
//! entries its halts stranded) back to that event — the per-operation
//! cost accounting the aggregate [`Counters`]
//! (`pfair_sched::overhead::Counters`) cannot express.

use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_json::{obj, Json, ToJson};

/// Which reweighting rule resolved an initiation (the paper's rules O
/// and I, the leave/join pair L+J, or the trivial immediate enactment
/// when no subtask of the task has been released yet).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Rule O (omission-changeable): the last-released subtask was not
    /// yet scheduled; it is halted and the change waits on the
    /// predecessor's `I_SW` completion.
    O,
    /// Rule I (ideal-changeable): the last-released subtask was already
    /// scheduled; the change waits on its `I_SW` completion (increases
    /// switch the scheduling weight immediately).
    I,
    /// Leave/join (rules L+J): unscheduled subtasks are withdrawn and
    /// the task rejoins after rule L's exit delay.
    Lj,
    /// No subtask released yet: the new weight takes effect at once.
    Immediate,
}

impl Rule {
    /// Canonical short label (`"O"`, `"I"`, `"LJ"`, `"immediate"`).
    pub fn label(self) -> &'static str {
        match self {
            Rule::O => "O",
            Rule::I => "I",
            Rule::Lj => "LJ",
            Rule::Immediate => "immediate",
        }
    }

    /// Inverse of [`Rule::label`].
    pub fn from_label(s: &str) -> Option<Rule> {
        match s {
            "O" => Some(Rule::O),
            "I" => Some(Rule::I),
            "LJ" => Some(Rule::Lj),
            "immediate" => Some(Rule::Immediate),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cost measured while a reweighting initiation's rules ran: the
/// *direct* cost, charged at initiation time. Deferred cost (stale
/// queue entries stranded by the halts, the era-opening release push)
/// arrives through [`Probe::on_stale_pop`]/[`Probe::on_stale_drop`]
/// and [`Probe::on_release`] and is attributed by recorders.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReweightCost {
    /// Ready-queue pushes + pops performed while the rules ran.
    pub queue_ops: u64,
    /// Subtasks halted by the rules (rule O halts one; LJ withdraws
    /// every unscheduled subtask).
    pub halts: u64,
}

/// One subtask release, as carried by [`Probe::on_release_batch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReleaseRec {
    /// Task released.
    pub task: TaskId,
    /// Subtask index.
    pub index: u64,
    /// Subtask deadline.
    pub deadline: Slot,
    /// Whether this release opens an era (where Eqn (5) samples drift).
    pub era_first: bool,
}

/// Per-task slice of a [`SpanDigest`]: what one task did over one
/// verified period of a busy span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSpanDelta {
    /// The task.
    pub task: TaskId,
    /// Subtask releases per period (= index advance per period).
    pub releases: u64,
    /// Scheduled quanta per period.
    pub schedules: u64,
}

/// The exact-integer aggregate of **one verified period** of a busy
/// span — the per-period deltas `verify_and_apply` computed while
/// proving `F^P(A) = Φ(A)` bit-for-bit against the per-slot oracle.
///
/// A digest is a *proof-carrying summary*: because the verifier
/// compared a full simulated period against the closed-form translation
/// before jumping, every count below is what a per-slot run would have
/// produced over each of the `periods` skipped repetitions — exactly,
/// not sampled. Halts and reweight activity are always zero inside a
/// verified span (any of them voids the periodicity check), so their
/// absence is itself part of what the digest proves.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanDigest {
    /// Period length `P` in slots.
    pub period: Slot,
    /// Ready-queue pushes per period.
    pub queue_pushes: u64,
    /// Ready-queue pops per period (stale pops included).
    pub queue_pops: u64,
    /// Stale entries discarded by pops per period.
    pub stale_pops: u64,
    /// Stale entries dropped by compaction per period.
    pub stale_drops: u64,
    /// Preemptions per period.
    pub preemptions: u64,
    /// Halts per period — always 0 in a verified span (a halt voids
    /// the periodicity check); carried so the digest states the proof.
    pub halts: u64,
    /// Scheduled quanta per period.
    pub scheduled_quanta: u64,
    /// Idle processor-slots per period.
    pub holes: u64,
    /// Migrations per period.
    pub migrations: u64,
    /// Per-task release/schedule counts per period (tasks with no
    /// activity in the period are omitted).
    pub per_task: Vec<TaskSpanDelta>,
}

impl SpanDigest {
    /// Total subtask releases per period.
    pub fn releases_total(&self) -> u64 {
        self.per_task
            .iter()
            .fold(0u64, |acc, d| acc.saturating_add(d.releases))
    }

    /// Total scheduled quanta per period (per-task view; equals
    /// [`SpanDigest::scheduled_quanta`]).
    pub fn schedules_total(&self) -> u64 {
        self.per_task
            .iter()
            .fold(0u64, |acc, d| acc.saturating_add(d.schedules))
    }
}

impl ToJson for SpanDigest {
    fn to_json(&self) -> Json {
        let per_task: Vec<Json> = self
            .per_task
            .iter()
            .map(|d| {
                obj([
                    ("task", d.task.to_json()),
                    ("releases", Json::Int(i128::from(d.releases))),
                    ("schedules", Json::Int(i128::from(d.schedules))),
                ])
            })
            .collect();
        obj([
            ("period", Json::Int(i128::from(self.period))),
            ("queue_pushes", Json::Int(i128::from(self.queue_pushes))),
            ("queue_pops", Json::Int(i128::from(self.queue_pops))),
            ("stale_pops", Json::Int(i128::from(self.stale_pops))),
            ("stale_drops", Json::Int(i128::from(self.stale_drops))),
            ("preemptions", Json::Int(i128::from(self.preemptions))),
            ("halts", Json::Int(i128::from(self.halts))),
            (
                "scheduled_quanta",
                Json::Int(i128::from(self.scheduled_quanta)),
            ),
            ("holes", Json::Int(i128::from(self.holes))),
            ("migrations", Json::Int(i128::from(self.migrations))),
            ("per_task", Json::Array(per_task)),
        ])
    }
}

/// Structured-event tap for the engine and executor. Every method has
/// an empty default body, so an implementation overrides only what it
/// observes and the rest compiles away.
///
/// # Span events
///
/// The tickless engine advances whole *spans* in closed form: quiet
/// spans (empty ready queue) and verified busy spans (periodic steady
/// state, PR 8). A probe that sets [`Probe::SPAN_AWARE`] receives those
/// spans as single aggregate events ([`Probe::on_quiet_span`],
/// [`Probe::on_release_batch`], [`Probe::on_busy_span_jump`]) and the
/// engine keeps its closed-form speedups; a legacy probe (the default,
/// `SPAN_AWARE = false`) forces the engine back to per-slot stepping
/// through busy regions and receives a per-slot replay for quiet
/// spans, so its observed event stream stays bit-identical.
pub trait Probe {
    /// `true` only for probes that are statically known to observe
    /// nothing (the [`NoopProbe`]). Diagnostic only — the busy-span
    /// batching predicate is [`Probe::SPAN_AWARE`], which the noop
    /// probe also sets. Any probe that records events must leave this
    /// `false` (the default).
    const IS_NOOP: bool = false;

    /// `true` for probes that consume span-level aggregate events
    /// ([`Probe::on_quiet_span`], [`Probe::on_release_batch`],
    /// [`Probe::on_busy_span_jump`], [`Probe::on_span_armed`]) instead
    /// of requiring a per-slot hook stream. The engine's busy-span
    /// batcher engages only when this is `true`: a closed-form jump
    /// emits one digest-carrying hook instead of O(period·k) per-slot
    /// calls, so the probe must be able to reconstruct (or aggregate)
    /// its state from the digest. Setting this `true` is a promise
    /// that the probe's externally observable output is identical
    /// whether the engine stepped per-slot or jumped — [`MetricsProbe`]
    /// keeps it exact by snapshotting at [`Probe::on_span_armed`] and
    /// scaling its own verified-period delta.
    ///
    /// [`MetricsProbe`]: crate::metrics::MetricsProbe
    const SPAN_AWARE: bool = false;

    /// Slot `t` is about to be simulated.
    fn on_slot_start(&mut self, t: Slot) {
        let _ = t;
    }

    /// Subtask `index` of `task` was released at `t` with the given
    /// deadline; `era_first` marks an era-opening release (a join,
    /// enactment, or rejoin — where Eqn (5) samples drift).
    fn on_release(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot, era_first: bool) {
        let _ = (task, index, t, deadline, era_first);
    }

    /// Subtask `index` of `task` was scheduled in slot `t`.
    fn on_schedule(&mut self, task: TaskId, index: u64, t: Slot) {
        let _ = (task, index, t);
    }

    /// `task` ran in slot `t − 1`, still has released unscheduled work,
    /// and was not selected in slot `t`.
    fn on_preempt(&mut self, task: TaskId, t: Slot) {
        let _ = (task, t);
    }

    /// Subtask `index` of `task` was halted at `t` (rule O, or a
    /// leave/LJ withdrawal).
    fn on_halt(&mut self, task: TaskId, index: u64, t: Slot) {
        let _ = (task, index, t);
    }

    /// A stale (halted/withdrawn) queue entry for subtask `index` of
    /// `task` was discarded by a pop in slot `t` — deferred queue cost
    /// of whatever halted it.
    fn on_stale_pop(&mut self, task: TaskId, index: u64, t: Slot) {
        let _ = (task, index, t);
    }

    /// A stale queue entry was dropped by a compaction sweep in slot
    /// `t` (it never reached a pop).
    fn on_stale_drop(&mut self, task: TaskId, index: u64, t: Slot) {
        let _ = (task, index, t);
    }

    /// A reweighting request for `task` was granted at `t` and resolved
    /// by `rule` at direct cost `cost`; the change is projected to be
    /// enacted at `enact_at` (`== t` when it fired immediately — an
    /// [`Probe::on_reweight_enacted`] call follows in that case).
    fn on_reweight_initiated(
        &mut self,
        task: TaskId,
        t: Slot,
        rule: Rule,
        cost: ReweightCost,
        enact_at: Slot,
    ) {
        let _ = (task, t, rule, cost, enact_at);
    }

    /// The change initiated at `initiated_at` for `task` was enacted at
    /// `t`: the scheduling weight switched (or, for a rule-I increase,
    /// the era-opening release was finally scheduled) and the
    /// reweighting event is complete.
    fn on_reweight_enacted(&mut self, task: TaskId, t: Slot, initiated_at: Slot) {
        let _ = (task, t, initiated_at);
    }

    /// The event-driven bookkeeping jumped `task`'s ideal trackers from
    /// boundary `from` to `to` in closed form (interval width
    /// `to − from`). Never fires in history mode, where the per-slot
    /// oracle keeps the trackers current.
    fn on_tracker_advance(&mut self, task: TaskId, from: Slot, to: Slot) {
        let _ = (task, from, to);
    }

    /// The tickless engine skipped the quiet span `[from, to)` in
    /// closed form (empty ready queue; `holes` idle processor-slots).
    /// The default replays [`Probe::on_slot_start`] once per skipped
    /// slot, so legacy probes observe a bit-identical stream;
    /// span-aware probes override this with an O(1) aggregate.
    fn on_quiet_span(&mut self, from: Slot, to: Slot, holes: u64) {
        let _ = holes;
        for s in from..to {
            self.on_slot_start(s);
        }
    }

    /// All subtask releases of one slot `t`, as a single batch. Only
    /// emitted to span-aware probes (legacy probes keep receiving
    /// per-release [`Probe::on_release`] calls); the default replays
    /// `on_release` per record, preserving the legacy stream.
    fn on_release_batch(&mut self, t: Slot, releases: &[ReleaseRec]) {
        for r in releases {
            self.on_release(r.task, r.index, t, r.deadline, r.era_first);
        }
    }

    /// The busy-span batcher armed a verification window at `t0`: the
    /// next `on_busy_span_jump` (if verification succeeds) covers
    /// everything observed since this instant. A span-aware probe
    /// snapshots whatever state it needs here so it can later scale
    /// its own verified-period delta exactly.
    fn on_span_armed(&mut self, t0: Slot) {
        let _ = t0;
    }

    /// The busy-span batcher verified one period starting at `t0`
    /// against the per-slot oracle and jumped `periods` further
    /// repetitions in closed form, skipping slots `[t1, t1 +
    /// periods·digest.period)`. `digest` is the exact per-period
    /// aggregate computed during verification. The default replays
    /// [`Probe::on_slot_start`] over the skipped slots — per-task
    /// events cannot be replayed from an aggregate, so probes that
    /// need them must either stay `SPAN_AWARE = false` or aggregate
    /// from the digest.
    fn on_busy_span_jump(&mut self, t0: Slot, t1: Slot, periods: u64, digest: &SpanDigest) {
        let _ = t0;
        let width = i64::try_from(periods)
            .ok()
            .and_then(|k| k.checked_mul(digest.period));
        let end = width.and_then(|w| t1.checked_add(w)).unwrap_or(t1);
        for s in t1..end {
            self.on_slot_start(s);
        }
    }

    /// Subtask `index` of `task` missed its `deadline`, detected at
    /// the end of slot `t`. Verified busy spans are miss-free by
    /// construction, so this hook never fires inside a jump.
    fn on_miss(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot) {
        let _ = (task, index, t, deadline);
    }

    /// Eqn (5) sampled `task`'s drift (`ps_total − icsw_total`) at an
    /// era-opening release in slot `t`. Era openings void busy-span
    /// verification, so this hook never fires inside a jump either.
    fn on_drift_sample(&mut self, task: TaskId, t: Slot, drift: Rational) {
        let _ = (task, t, drift);
    }

    /// Executor only: `task`'s tick ran past its quantum budget.
    fn on_exec_overrun(&mut self, task: TaskId, t: Slot) {
        let _ = (task, t);
    }

    /// Executor only: a scheduled quantum of `task` was lost because
    /// its previous tick was still running.
    fn on_exec_skip(&mut self, task: TaskId, t: Slot) {
        let _ = (task, t);
    }
}

/// The default probe: observes nothing, costs nothing. Every hook
/// inlines to an empty body under static dispatch, so
/// `Engine<NoopProbe>` compiles to the same hot path as an engine with
/// no probe parameter at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const IS_NOOP: bool = true;
    /// Trivially span-aware: a probe that observes nothing observes
    /// nothing over a span too, so every closed-form fast path stays
    /// engaged.
    const SPAN_AWARE: bool = true;

    // Override the replay defaults with empty bodies so a span is
    // guaranteed O(1) under the noop probe, independent of how well
    // the optimizer eliminates an empty-bodied replay loop.
    fn on_quiet_span(&mut self, _from: Slot, _to: Slot, _holes: u64) {}
    fn on_release_batch(&mut self, _t: Slot, _releases: &[ReleaseRec]) {}
    fn on_busy_span_jump(&mut self, _t0: Slot, _t1: Slot, _periods: u64, _digest: &SpanDigest) {}
}

/// Fans every hook out to two probes (e.g. a [`TraceRecorder`] and a
/// [`MetricsProbe`] on the same run). Compose freely:
/// `Fanout(a, Fanout(b, c))`.
///
/// [`TraceRecorder`]: crate::chrome::TraceRecorder
/// [`MetricsProbe`]: crate::metrics::MetricsProbe
#[derive(Clone, Copy, Debug, Default)]
pub struct Fanout<A, B>(pub A, pub B);

impl<A: Probe, B: Probe> Probe for Fanout<A, B> {
    /// Span-aware only when both sides are: one legacy member forces
    /// per-slot stepping for the whole fanout, keeping every member's
    /// stream bit-identical.
    const SPAN_AWARE: bool = A::SPAN_AWARE && B::SPAN_AWARE;

    fn on_slot_start(&mut self, t: Slot) {
        self.0.on_slot_start(t);
        self.1.on_slot_start(t);
    }

    fn on_release(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot, era_first: bool) {
        self.0.on_release(task, index, t, deadline, era_first);
        self.1.on_release(task, index, t, deadline, era_first);
    }

    fn on_schedule(&mut self, task: TaskId, index: u64, t: Slot) {
        self.0.on_schedule(task, index, t);
        self.1.on_schedule(task, index, t);
    }

    fn on_preempt(&mut self, task: TaskId, t: Slot) {
        self.0.on_preempt(task, t);
        self.1.on_preempt(task, t);
    }

    fn on_halt(&mut self, task: TaskId, index: u64, t: Slot) {
        self.0.on_halt(task, index, t);
        self.1.on_halt(task, index, t);
    }

    fn on_stale_pop(&mut self, task: TaskId, index: u64, t: Slot) {
        self.0.on_stale_pop(task, index, t);
        self.1.on_stale_pop(task, index, t);
    }

    fn on_stale_drop(&mut self, task: TaskId, index: u64, t: Slot) {
        self.0.on_stale_drop(task, index, t);
        self.1.on_stale_drop(task, index, t);
    }

    fn on_reweight_initiated(
        &mut self,
        task: TaskId,
        t: Slot,
        rule: Rule,
        cost: ReweightCost,
        enact_at: Slot,
    ) {
        self.0.on_reweight_initiated(task, t, rule, cost, enact_at);
        self.1.on_reweight_initiated(task, t, rule, cost, enact_at);
    }

    fn on_reweight_enacted(&mut self, task: TaskId, t: Slot, initiated_at: Slot) {
        self.0.on_reweight_enacted(task, t, initiated_at);
        self.1.on_reweight_enacted(task, t, initiated_at);
    }

    fn on_tracker_advance(&mut self, task: TaskId, from: Slot, to: Slot) {
        self.0.on_tracker_advance(task, from, to);
        self.1.on_tracker_advance(task, from, to);
    }

    fn on_quiet_span(&mut self, from: Slot, to: Slot, holes: u64) {
        self.0.on_quiet_span(from, to, holes);
        self.1.on_quiet_span(from, to, holes);
    }

    fn on_release_batch(&mut self, t: Slot, releases: &[ReleaseRec]) {
        self.0.on_release_batch(t, releases);
        self.1.on_release_batch(t, releases);
    }

    fn on_span_armed(&mut self, t0: Slot) {
        self.0.on_span_armed(t0);
        self.1.on_span_armed(t0);
    }

    fn on_busy_span_jump(&mut self, t0: Slot, t1: Slot, periods: u64, digest: &SpanDigest) {
        self.0.on_busy_span_jump(t0, t1, periods, digest);
        self.1.on_busy_span_jump(t0, t1, periods, digest);
    }

    fn on_miss(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot) {
        self.0.on_miss(task, index, t, deadline);
        self.1.on_miss(task, index, t, deadline);
    }

    fn on_drift_sample(&mut self, task: TaskId, t: Slot, drift: Rational) {
        self.0.on_drift_sample(task, t, drift);
        self.1.on_drift_sample(task, t, drift);
    }

    fn on_exec_overrun(&mut self, task: TaskId, t: Slot) {
        self.0.on_exec_overrun(task, t);
        self.1.on_exec_overrun(task, t);
    }

    fn on_exec_skip(&mut self, task: TaskId, t: Slot) {
        self.0.on_exec_skip(task, t);
        self.1.on_exec_skip(task, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_labels_round_trip() {
        for r in [Rule::O, Rule::I, Rule::Lj, Rule::Immediate] {
            assert_eq!(Rule::from_label(r.label()), Some(r));
        }
        assert_eq!(Rule::from_label("nonsense"), None);
    }

    #[test]
    fn noop_probe_accepts_every_hook() {
        let mut p = NoopProbe;
        p.on_slot_start(0);
        p.on_release(TaskId(0), 1, 0, 4, true);
        p.on_schedule(TaskId(0), 1, 0);
        p.on_preempt(TaskId(0), 1);
        p.on_halt(TaskId(0), 1, 2);
        p.on_stale_pop(TaskId(0), 1, 3);
        p.on_stale_drop(TaskId(0), 1, 3);
        p.on_reweight_initiated(TaskId(0), 2, Rule::O, ReweightCost::default(), 5);
        p.on_reweight_enacted(TaskId(0), 5, 2);
        p.on_tracker_advance(TaskId(0), 2, 5);
        p.on_quiet_span(3, 9, 12);
        p.on_release_batch(
            4,
            &[ReleaseRec {
                task: TaskId(0),
                index: 2,
                deadline: 8,
                era_first: false,
            }],
        );
        p.on_span_armed(10);
        p.on_busy_span_jump(10, 14, 6, &SpanDigest::default());
        p.on_miss(TaskId(0), 3, 9, 9);
        p.on_drift_sample(TaskId(0), 4, Rational::ZERO);
        p.on_exec_overrun(TaskId(0), 7);
        p.on_exec_skip(TaskId(0), 8);
    }

    /// A legacy probe (default hook bodies, `SPAN_AWARE = false`)
    /// receiving the span hooks sees exactly the per-slot stream a
    /// per-slot run would have produced.
    #[test]
    fn span_hook_defaults_replay_per_slot() {
        #[derive(Default)]
        struct SlotLog {
            starts: Vec<Slot>,
            releases: Vec<(TaskId, u64, Slot, Slot, bool)>,
        }
        impl Probe for SlotLog {
            fn on_slot_start(&mut self, t: Slot) {
                self.starts.push(t);
            }
            fn on_release(
                &mut self,
                task: TaskId,
                index: u64,
                t: Slot,
                deadline: Slot,
                era_first: bool,
            ) {
                self.releases.push((task, index, t, deadline, era_first));
            }
        }
        const { assert!(!SlotLog::SPAN_AWARE, "default must stay legacy") };

        let mut p = SlotLog::default();
        p.on_quiet_span(5, 9, 2);
        assert_eq!(p.starts, vec![5, 6, 7, 8]);

        let mut p = SlotLog::default();
        let digest = SpanDigest {
            period: 3,
            ..SpanDigest::default()
        };
        p.on_busy_span_jump(0, 3, 2, &digest);
        assert_eq!(p.starts, vec![3, 4, 5, 6, 7, 8]);

        let mut p = SlotLog::default();
        p.on_release_batch(
            7,
            &[
                ReleaseRec {
                    task: TaskId(1),
                    index: 4,
                    deadline: 11,
                    era_first: true,
                },
                ReleaseRec {
                    task: TaskId(2),
                    index: 1,
                    deadline: 9,
                    era_first: false,
                },
            ],
        );
        assert_eq!(
            p.releases,
            vec![(TaskId(1), 4, 7, 11, true), (TaskId(2), 1, 7, 9, false)]
        );
    }

    #[test]
    fn fanout_span_awareness_is_the_conjunction() {
        struct Legacy;
        impl Probe for Legacy {}
        struct Aware;
        impl Probe for Aware {
            const SPAN_AWARE: bool = true;
        }
        const {
            assert!(NoopProbe::SPAN_AWARE);
            assert!(<Fanout<Aware, NoopProbe>>::SPAN_AWARE);
            assert!(!<Fanout<Aware, Legacy>>::SPAN_AWARE);
            assert!(!<Fanout<Legacy, NoopProbe>>::SPAN_AWARE);
        }
    }

    #[test]
    fn span_digest_totals_and_json_shape() {
        let digest = SpanDigest {
            period: 12,
            queue_pushes: 7,
            queue_pops: 7,
            scheduled_quanta: 9,
            per_task: vec![
                TaskSpanDelta {
                    task: TaskId(0),
                    releases: 3,
                    schedules: 4,
                },
                TaskSpanDelta {
                    task: TaskId(1),
                    releases: 2,
                    schedules: 5,
                },
            ],
            ..SpanDigest::default()
        };
        assert_eq!(digest.releases_total(), 5);
        assert_eq!(digest.schedules_total(), 9);
        let json = digest.to_json();
        assert_eq!(json.get("period").and_then(Json::as_int), Some(12));
        let Some(Json::Array(per_task)) = json.get("per_task") else {
            panic!("per_task missing");
        };
        assert_eq!(per_task.len(), 2);
        assert_eq!(per_task[0].get("releases").and_then(Json::as_int), Some(3));
    }

    #[test]
    fn fanout_forwards_to_both() {
        #[derive(Default)]
        struct CountProbe {
            calls: u64,
        }
        impl Probe for CountProbe {
            fn on_slot_start(&mut self, _t: Slot) {
                self.calls += 1;
            }
            fn on_halt(&mut self, _task: TaskId, _index: u64, _t: Slot) {
                self.calls += 1;
            }
        }
        let mut f = Fanout(CountProbe::default(), CountProbe::default());
        f.on_slot_start(0);
        f.on_halt(TaskId(1), 2, 3);
        f.on_schedule(TaskId(1), 2, 3); // not counted by either
        assert_eq!(f.0.calls, 2);
        assert_eq!(f.1.calls, 2);
    }
}
