//! The [`Probe`] trait: the engine's structured-event tap.
//!
//! The engine is generic over a probe (`Engine<P: Probe = NoopProbe>`),
//! so every hook below is resolved by **static dispatch**. With the
//! default [`NoopProbe`] each call monomorphizes to an empty inlined
//! body and the compiled hot path is identical to a probe-free engine —
//! an invariant the `obs_overhead` benchmark in `crates/bench` guards
//! (NoopProbe within noise of the default entry point at 10k/100k-slot
//! horizons).
//!
//! Hooks fire at the same slot-pipeline boundaries the paper's rules
//! are stated at: slot starts, subtask releases/schedules/preemptions,
//! rule-O halts, reweight initiation/enactment, and the closed-form
//! `advance_to` tracker jumps of the event-driven bookkeeping. Stale
//! queue-entry discards ([`Probe::on_stale_pop`],
//! [`Probe::on_stale_drop`]) are reported individually so a recorder
//! can attribute the *deferred* queue cost of a reweighting event (the
//! entries its halts stranded) back to that event — the per-operation
//! cost accounting the aggregate [`Counters`]
//! (`pfair_sched::overhead::Counters`) cannot express.

use pfair_core::task::TaskId;
use pfair_core::time::Slot;

/// Which reweighting rule resolved an initiation (the paper's rules O
/// and I, the leave/join pair L+J, or the trivial immediate enactment
/// when no subtask of the task has been released yet).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Rule O (omission-changeable): the last-released subtask was not
    /// yet scheduled; it is halted and the change waits on the
    /// predecessor's `I_SW` completion.
    O,
    /// Rule I (ideal-changeable): the last-released subtask was already
    /// scheduled; the change waits on its `I_SW` completion (increases
    /// switch the scheduling weight immediately).
    I,
    /// Leave/join (rules L+J): unscheduled subtasks are withdrawn and
    /// the task rejoins after rule L's exit delay.
    Lj,
    /// No subtask released yet: the new weight takes effect at once.
    Immediate,
}

impl Rule {
    /// Canonical short label (`"O"`, `"I"`, `"LJ"`, `"immediate"`).
    pub fn label(self) -> &'static str {
        match self {
            Rule::O => "O",
            Rule::I => "I",
            Rule::Lj => "LJ",
            Rule::Immediate => "immediate",
        }
    }

    /// Inverse of [`Rule::label`].
    pub fn from_label(s: &str) -> Option<Rule> {
        match s {
            "O" => Some(Rule::O),
            "I" => Some(Rule::I),
            "LJ" => Some(Rule::Lj),
            "immediate" => Some(Rule::Immediate),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cost measured while a reweighting initiation's rules ran: the
/// *direct* cost, charged at initiation time. Deferred cost (stale
/// queue entries stranded by the halts, the era-opening release push)
/// arrives through [`Probe::on_stale_pop`]/[`Probe::on_stale_drop`]
/// and [`Probe::on_release`] and is attributed by recorders.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReweightCost {
    /// Ready-queue pushes + pops performed while the rules ran.
    pub queue_ops: u64,
    /// Subtasks halted by the rules (rule O halts one; LJ withdraws
    /// every unscheduled subtask).
    pub halts: u64,
}

/// Structured-event tap for the engine and executor. Every method has
/// an empty default body, so an implementation overrides only what it
/// observes and the rest compiles away.
pub trait Probe {
    /// `true` only for probes that are statically known to observe
    /// nothing (the [`NoopProbe`]). The engine's busy-span batcher
    /// consults this: a closed-form jump emits no per-slot hook calls,
    /// so it is only byte-equivalent to per-slot stepping when the
    /// probe could not have observed those slots anyway. Any probe
    /// that records events must leave this `false` (the default).
    const IS_NOOP: bool = false;

    /// Slot `t` is about to be simulated.
    fn on_slot_start(&mut self, t: Slot) {
        let _ = t;
    }

    /// Subtask `index` of `task` was released at `t` with the given
    /// deadline; `era_first` marks an era-opening release (a join,
    /// enactment, or rejoin — where Eqn (5) samples drift).
    fn on_release(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot, era_first: bool) {
        let _ = (task, index, t, deadline, era_first);
    }

    /// Subtask `index` of `task` was scheduled in slot `t`.
    fn on_schedule(&mut self, task: TaskId, index: u64, t: Slot) {
        let _ = (task, index, t);
    }

    /// `task` ran in slot `t − 1`, still has released unscheduled work,
    /// and was not selected in slot `t`.
    fn on_preempt(&mut self, task: TaskId, t: Slot) {
        let _ = (task, t);
    }

    /// Subtask `index` of `task` was halted at `t` (rule O, or a
    /// leave/LJ withdrawal).
    fn on_halt(&mut self, task: TaskId, index: u64, t: Slot) {
        let _ = (task, index, t);
    }

    /// A stale (halted/withdrawn) queue entry for subtask `index` of
    /// `task` was discarded by a pop in slot `t` — deferred queue cost
    /// of whatever halted it.
    fn on_stale_pop(&mut self, task: TaskId, index: u64, t: Slot) {
        let _ = (task, index, t);
    }

    /// A stale queue entry was dropped by a compaction sweep in slot
    /// `t` (it never reached a pop).
    fn on_stale_drop(&mut self, task: TaskId, index: u64, t: Slot) {
        let _ = (task, index, t);
    }

    /// A reweighting request for `task` was granted at `t` and resolved
    /// by `rule` at direct cost `cost`; the change is projected to be
    /// enacted at `enact_at` (`== t` when it fired immediately — an
    /// [`Probe::on_reweight_enacted`] call follows in that case).
    fn on_reweight_initiated(
        &mut self,
        task: TaskId,
        t: Slot,
        rule: Rule,
        cost: ReweightCost,
        enact_at: Slot,
    ) {
        let _ = (task, t, rule, cost, enact_at);
    }

    /// The change initiated at `initiated_at` for `task` was enacted at
    /// `t`: the scheduling weight switched (or, for a rule-I increase,
    /// the era-opening release was finally scheduled) and the
    /// reweighting event is complete.
    fn on_reweight_enacted(&mut self, task: TaskId, t: Slot, initiated_at: Slot) {
        let _ = (task, t, initiated_at);
    }

    /// The event-driven bookkeeping jumped `task`'s ideal trackers from
    /// boundary `from` to `to` in closed form (interval width
    /// `to − from`). Never fires in history mode, where the per-slot
    /// oracle keeps the trackers current.
    fn on_tracker_advance(&mut self, task: TaskId, from: Slot, to: Slot) {
        let _ = (task, from, to);
    }

    /// Executor only: `task`'s tick ran past its quantum budget.
    fn on_exec_overrun(&mut self, task: TaskId, t: Slot) {
        let _ = (task, t);
    }

    /// Executor only: a scheduled quantum of `task` was lost because
    /// its previous tick was still running.
    fn on_exec_skip(&mut self, task: TaskId, t: Slot) {
        let _ = (task, t);
    }
}

/// The default probe: observes nothing, costs nothing. Every hook
/// inlines to an empty body under static dispatch, so
/// `Engine<NoopProbe>` compiles to the same hot path as an engine with
/// no probe parameter at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const IS_NOOP: bool = true;
}

/// Fans every hook out to two probes (e.g. a [`TraceRecorder`] and a
/// [`MetricsProbe`] on the same run). Compose freely:
/// `Fanout(a, Fanout(b, c))`.
///
/// [`TraceRecorder`]: crate::chrome::TraceRecorder
/// [`MetricsProbe`]: crate::metrics::MetricsProbe
#[derive(Clone, Copy, Debug, Default)]
pub struct Fanout<A, B>(pub A, pub B);

impl<A: Probe, B: Probe> Probe for Fanout<A, B> {
    fn on_slot_start(&mut self, t: Slot) {
        self.0.on_slot_start(t);
        self.1.on_slot_start(t);
    }

    fn on_release(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot, era_first: bool) {
        self.0.on_release(task, index, t, deadline, era_first);
        self.1.on_release(task, index, t, deadline, era_first);
    }

    fn on_schedule(&mut self, task: TaskId, index: u64, t: Slot) {
        self.0.on_schedule(task, index, t);
        self.1.on_schedule(task, index, t);
    }

    fn on_preempt(&mut self, task: TaskId, t: Slot) {
        self.0.on_preempt(task, t);
        self.1.on_preempt(task, t);
    }

    fn on_halt(&mut self, task: TaskId, index: u64, t: Slot) {
        self.0.on_halt(task, index, t);
        self.1.on_halt(task, index, t);
    }

    fn on_stale_pop(&mut self, task: TaskId, index: u64, t: Slot) {
        self.0.on_stale_pop(task, index, t);
        self.1.on_stale_pop(task, index, t);
    }

    fn on_stale_drop(&mut self, task: TaskId, index: u64, t: Slot) {
        self.0.on_stale_drop(task, index, t);
        self.1.on_stale_drop(task, index, t);
    }

    fn on_reweight_initiated(
        &mut self,
        task: TaskId,
        t: Slot,
        rule: Rule,
        cost: ReweightCost,
        enact_at: Slot,
    ) {
        self.0.on_reweight_initiated(task, t, rule, cost, enact_at);
        self.1.on_reweight_initiated(task, t, rule, cost, enact_at);
    }

    fn on_reweight_enacted(&mut self, task: TaskId, t: Slot, initiated_at: Slot) {
        self.0.on_reweight_enacted(task, t, initiated_at);
        self.1.on_reweight_enacted(task, t, initiated_at);
    }

    fn on_tracker_advance(&mut self, task: TaskId, from: Slot, to: Slot) {
        self.0.on_tracker_advance(task, from, to);
        self.1.on_tracker_advance(task, from, to);
    }

    fn on_exec_overrun(&mut self, task: TaskId, t: Slot) {
        self.0.on_exec_overrun(task, t);
        self.1.on_exec_overrun(task, t);
    }

    fn on_exec_skip(&mut self, task: TaskId, t: Slot) {
        self.0.on_exec_skip(task, t);
        self.1.on_exec_skip(task, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_labels_round_trip() {
        for r in [Rule::O, Rule::I, Rule::Lj, Rule::Immediate] {
            assert_eq!(Rule::from_label(r.label()), Some(r));
        }
        assert_eq!(Rule::from_label("nonsense"), None);
    }

    #[test]
    fn noop_probe_accepts_every_hook() {
        let mut p = NoopProbe;
        p.on_slot_start(0);
        p.on_release(TaskId(0), 1, 0, 4, true);
        p.on_schedule(TaskId(0), 1, 0);
        p.on_preempt(TaskId(0), 1);
        p.on_halt(TaskId(0), 1, 2);
        p.on_stale_pop(TaskId(0), 1, 3);
        p.on_stale_drop(TaskId(0), 1, 3);
        p.on_reweight_initiated(TaskId(0), 2, Rule::O, ReweightCost::default(), 5);
        p.on_reweight_enacted(TaskId(0), 5, 2);
        p.on_tracker_advance(TaskId(0), 2, 5);
        p.on_exec_overrun(TaskId(0), 7);
        p.on_exec_skip(TaskId(0), 8);
    }

    #[test]
    fn fanout_forwards_to_both() {
        #[derive(Default)]
        struct CountProbe {
            calls: u64,
        }
        impl Probe for CountProbe {
            fn on_slot_start(&mut self, _t: Slot) {
                self.calls += 1;
            }
            fn on_halt(&mut self, _task: TaskId, _index: u64, _t: Slot) {
                self.calls += 1;
            }
        }
        let mut f = Fanout(CountProbe::default(), CountProbe::default());
        f.on_slot_start(0);
        f.on_halt(TaskId(1), 2, 3);
        f.on_schedule(TaskId(1), 2, 3); // not counted by either
        assert_eq!(f.0.calls, 2);
        assert_eq!(f.1.calls, 2);
    }
}
