//! Exact-integer metrics: counters and fixed-bucket histograms.
//!
//! Everything here stays in the integer domain — the registry holds
//! `u64` counters and power-of-two-bucket histograms with `u128` sums,
//! and its snapshots (text and JSON) render integers only — so the
//! observability layer obeys the same exact-arithmetic invariant
//! `pfair-audit` enforces on the scheduling crates (this crate is in
//! the audit's lint scope). Histogram buckets are *fixed* at
//! construction: bucket 0 holds the value 0 and bucket `i ≥ 1` holds
//! values in `[2^(i−1), 2^i)`, so recording is a `checked_ilog2`, no
//! allocation, no data-dependent layout — snapshots of identical runs
//! are byte-identical regardless of arrival order.

use crate::probe::{Probe, ReleaseRec, ReweightCost, Rule, SpanDigest};
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_json::{FromJson, Json, JsonError, ToJson};

/// Number of histogram buckets: bucket 0 for the value 0, buckets
/// 1..=64 for the 64 possible bit lengths of a `u64`.
const BUCKETS: usize = 65;

/// A fixed-bucket power-of-two histogram over `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Bucket index of a sample: 0 for 0, else bit length (`ilog2 + 1`).
fn bucket_of(value: u64) -> usize {
    value
        .checked_ilog2()
        .and_then(|b| usize::try_from(b).ok())
        .map_or(0, |b| b.saturating_add(1))
}

/// Inclusive `[lo, hi]` range of values a bucket covers.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = bucket_of(value);
        if let Some(slot) = self.counts.get_mut(b) {
            *slot = slot.saturating_add(1);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(u128::from(value));
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Records `n` identical samples of `value` in O(1) — the exact
    /// bulk path behind span aggregation: `n` repeats of one sample
    /// land in one bucket, add `n·value` to the sum, and cannot move
    /// the max beyond `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = bucket_of(value);
        if let Some(slot) = self.counts.get_mut(b) {
            *slot = slot.saturating_add(n);
        }
        self.count = self.count.saturating_add(n);
        self.sum = self
            .sum
            .saturating_add(u128::from(value).saturating_mul(u128::from(n)));
        self.max = self.max.max(value);
    }

    /// The histogram of samples recorded since `base` (which must be
    /// an earlier snapshot of `self`): bucket-wise, count, and sum
    /// subtraction. The delta's `max` is inherited from `self` — a
    /// delta is only ever scaled back *into* the histogram it came
    /// from, where every delta sample is already ≤ `self.max`, so the
    /// merged max stays exact.
    pub fn delta_since(&self, base: &Histogram) -> Histogram {
        let counts = self
            .counts
            .iter()
            .zip(base.counts.iter().chain(std::iter::repeat(&0)))
            .map(|(cur, old)| cur.saturating_sub(*old))
            .collect();
        Histogram {
            counts,
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            max: self.max,
        }
    }

    /// Adds `k` copies of `delta` (a [`Histogram::delta_since`]
    /// result) — exact integers throughout: bucket counts and the
    /// sample count scale by `k`, the sum by `k` exactly, and the max
    /// is the pairwise max (repeating samples introduces no new
    /// maximum).
    pub fn add_scaled(&mut self, delta: &Histogram, k: u64) {
        for (slot, d) in self.counts.iter_mut().zip(delta.counts.iter()) {
            *slot = slot.saturating_add(d.saturating_mul(k));
        }
        self.count = self.count.saturating_add(delta.count.saturating_mul(k));
        self.sum = self
            .sum
            .saturating_add(delta.sum.saturating_mul(u128::from(k)));
        self.max = self.max.max(delta.max);
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, low to high.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

fn int_to_json(v: u64) -> Json {
    Json::Int(i128::from(v))
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let buckets = self
            .buckets()
            .into_iter()
            .map(|(lo, hi, c)| Json::Array(vec![int_to_json(lo), int_to_json(hi), int_to_json(c)]))
            .collect();
        pfair_json::obj([
            ("count", int_to_json(self.count)),
            (
                "sum",
                Json::Int(i128::try_from(self.sum).unwrap_or(i128::MAX)),
            ),
            ("max", int_to_json(self.max)),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

fn u64_field(value: &Json, key: &str) -> Result<u64, JsonError> {
    let raw: i128 = value.field(key)?;
    u64::try_from(raw).map_err(|_| JsonError::new(format!("{key}: out of u64 range")))
}

impl FromJson for Histogram {
    fn from_json(value: &Json) -> Result<Histogram, JsonError> {
        let mut h = Histogram::new();
        h.count = u64_field(value, "count")?;
        let sum: i128 = value.field("sum")?;
        h.sum = u128::try_from(sum).map_err(|_| JsonError::new("sum: negative"))?;
        h.max = u64_field(value, "max")?;
        let Some(Json::Array(buckets)) = value.get("buckets") else {
            return Err(JsonError::new("buckets: missing or not an array"));
        };
        for b in buckets {
            let Json::Array(triple) = b else {
                return Err(JsonError::new("bucket: not an array"));
            };
            let lo = triple
                .first()
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| JsonError::new("bucket lo"))?;
            let c = triple
                .get(2)
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| JsonError::new("bucket count"))?;
            if let Some(slot) = h.counts.get_mut(bucket_of(lo)) {
                *slot = c;
            }
        }
        Ok(h)
    }
}

/// An exact-integer metrics registry: named `u64` counters plus named
/// [`Histogram`]s. Lookup is a linear scan (registries hold tens of
/// names, and the hot path — the engine with [`NoopProbe`]
/// (`crate::probe::NoopProbe`) — never touches one).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to counter `name`, creating it at zero first.
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some((_, v)) = self.counters.iter_mut().find(|(n, _)| n == name) {
            *v = v.saturating_add(by);
            return;
        }
        self.counters.push((name.to_string(), by));
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Records `value` into histogram `name`, creating it first.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some((_, h)) = self.histograms.iter_mut().find(|(n, _)| n == name) {
            h.record(value);
            return;
        }
        let mut h = Histogram::new();
        h.record(value);
        self.histograms.push((name.to_string(), h));
    }

    /// Records `n` identical samples of `value` into histogram `name`
    /// in O(1) (see [`Histogram::record_n`]).
    pub fn record_n(&mut self, name: &str, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some((_, h)) = self.histograms.iter_mut().find(|(n_, _)| n_ == name) {
            h.record_n(value, n);
            return;
        }
        let mut h = Histogram::new();
        h.record_n(value, n);
        self.histograms.push((name.to_string(), h));
    }

    /// Everything recorded since `base` (an earlier clone of `self`):
    /// counter-wise and histogram-wise subtraction. Names present in
    /// `base` but absent here are ignored — a registry only grows.
    pub fn delta_since(&self, base: &Registry) -> Registry {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(base.counter(n))))
            .collect();
        let empty = Histogram::new();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                (
                    n.clone(),
                    h.delta_since(base.histogram(n).unwrap_or(&empty)),
                )
            })
            .collect();
        Registry {
            counters,
            histograms,
        }
    }

    /// Folds another registry into this one: every counter adds, every
    /// histogram merges bucket-wise — exact integer arithmetic, so the
    /// merge of N per-shard registries equals what one registry would
    /// have recorded had it observed all N event streams. Merge order
    /// does not affect the totals; callers that render the result
    /// should still merge in a fixed shard order so *name insertion
    /// order* (and with it [`Registry::snapshot_text`]) is
    /// deterministic too.
    pub fn merge(&mut self, other: &Registry) {
        self.add_scaled(other, 1);
    }

    /// Adds `k` copies of `delta` (a [`Registry::delta_since`]
    /// result): every counter grows by `k·delta`, every histogram by
    /// `k` bucket-wise copies — exact integers, no sampling. This is
    /// the busy-span bulk path: one verified period's delta times the
    /// jump count equals, bit for bit, what per-slot replay of the
    /// jumped span would have accumulated.
    pub fn add_scaled(&mut self, delta: &Registry, k: u64) {
        for (name, v) in &delta.counters {
            let by = v.saturating_mul(k);
            if by > 0 {
                self.inc(name, by);
            }
        }
        for (name, dh) in &delta.histograms {
            if dh.count() == 0 {
                continue;
            }
            if let Some((_, h)) = self.histograms.iter_mut().find(|(n, _)| n == name) {
                h.add_scaled(dh, k);
            } else {
                let mut h = Histogram::new();
                h.add_scaled(dh, k);
                self.histograms.push((name.to_string(), h));
            }
        }
    }

    /// Histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Counter names, sorted (the canonical snapshot order).
    pub fn counter_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.counters.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// The canonical text snapshot: counters then histograms, each
    /// sorted by name, one per line, integers only. Identical runs
    /// produce byte-identical snapshots.
    pub fn snapshot_text(&self) -> String {
        let mut out = String::new();
        let mut counters: Vec<&(String, u64)> = self.counters.iter().collect();
        counters.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in counters {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        let mut hists: Vec<&(String, Histogram)> = self.histograms.iter().collect();
        hists.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in hists {
            out.push_str(&format!(
                "hist {name}: count={} sum={} max={}",
                h.count(),
                h.sum(),
                h.max()
            ));
            for (lo, hi, c) in h.buckets() {
                if lo == hi {
                    out.push_str(&format!(" [{lo}]={c}"));
                } else {
                    out.push_str(&format!(" [{lo}..{hi}]={c}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        let mut counters: Vec<(String, Json)> = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), int_to_json(*v)))
            .collect();
        counters.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut hists: Vec<(String, Json)> = self
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.to_json()))
            .collect();
        hists.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        pfair_json::obj([
            ("counters", Json::Object(counters)),
            ("histograms", Json::Object(hists)),
        ])
    }
}

impl FromJson for Registry {
    fn from_json(value: &Json) -> Result<Registry, JsonError> {
        let mut reg = Registry::new();
        let Some(Json::Object(counters)) = value.get("counters") else {
            return Err(JsonError::new("counters: missing or not an object"));
        };
        for (name, v) in counters {
            let raw = v
                .as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| JsonError::new(format!("counter {name}: not a u64")))?;
            reg.inc(name, raw);
        }
        let Some(Json::Object(hists)) = value.get("histograms") else {
            return Err(JsonError::new("histograms: missing or not an object"));
        };
        for (name, v) in hists {
            let h = Histogram::from_json(v)?;
            reg.histograms.push((name.clone(), h));
        }
        Ok(reg)
    }
}

/// Width of a slot interval as a `u64` (0 when `to ≤ from`).
fn width(from: Slot, to: Slot) -> u64 {
    to.checked_sub(from)
        .and_then(|d| u64::try_from(d).ok())
        .unwrap_or(0)
}

/// A [`Probe`] that aggregates every hook into a [`Registry`]:
/// counters per event kind (reweights broken down by rule) and
/// histograms of per-event direct cost, initiation→enactment latency,
/// and tracker-jump interval widths.
///
/// Span-aware ([`Probe::SPAN_AWARE`]), and **exactly** so: when the
/// busy-span batcher arms a verification window the probe clones its
/// registry ([`Probe::on_span_armed`]); when the engine jumps `k`
/// verified periods, the registry delta accumulated over the one
/// simulated period is scaled by `k` and merged back
/// ([`Registry::add_scaled`]). Because the verified period's hook
/// stream is what a per-slot run would emit — shifted in time, which
/// no counter or histogram width depends on — the final registry is
/// bit-identical to a per-slot oracle run's.
#[derive(Clone, Debug, Default)]
pub struct MetricsProbe {
    reg: Registry,
    /// Registry snapshot taken at the last `on_span_armed`, keyed by
    /// the arm slot so a stale snapshot (mismatch, quiet-span overrun)
    /// can never be scaled against the wrong window.
    armed: Option<(Slot, Registry)>,
}

impl MetricsProbe {
    /// An empty metrics probe.
    pub fn new() -> MetricsProbe {
        MetricsProbe::default()
    }

    /// The aggregated registry.
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Consumes the probe, returning the registry.
    pub fn into_registry(self) -> Registry {
        self.reg
    }

    /// A probe resuming from a previously collected registry (snapshot
    /// restore): counters continue from the persisted totals, so a
    /// resumed run's final registry is identical to an uninterrupted
    /// one's.
    pub fn from_registry(reg: Registry) -> MetricsProbe {
        MetricsProbe { reg, armed: None }
    }

    /// Digest-only fallback for a jump with no matching armed
    /// snapshot (defensive; the engine always arms before jumping):
    /// bulk-increments the counters the digest carries. Histograms
    /// whose samples the digest cannot reconstruct (tracker jump
    /// widths) are left to the snapshot path.
    fn apply_digest(&mut self, periods: u64, digest: &SpanDigest) {
        let slots = u64::try_from(digest.period)
            .unwrap_or(0)
            .saturating_mul(periods);
        self.reg.inc("slots", slots);
        self.reg
            .inc("releases", digest.releases_total().saturating_mul(periods));
        self.reg
            .inc("schedules", digest.scheduled_quanta.saturating_mul(periods));
        self.reg
            .inc("preemptions", digest.preemptions.saturating_mul(periods));
        self.reg.inc("halts", digest.halts.saturating_mul(periods));
        self.reg.inc(
            "queue.stale_pops",
            digest.stale_pops.saturating_mul(periods),
        );
        self.reg.inc(
            "queue.stale_drops",
            digest.stale_drops.saturating_mul(periods),
        );
    }
}

impl Probe for MetricsProbe {
    const SPAN_AWARE: bool = true;

    fn on_slot_start(&mut self, _t: Slot) {
        self.reg.inc("slots", 1);
    }

    fn on_release(&mut self, _task: TaskId, _index: u64, _t: Slot, _deadline: Slot, era: bool) {
        self.reg.inc("releases", 1);
        if era {
            self.reg.inc("releases.era_first", 1);
        }
    }

    fn on_quiet_span(&mut self, from: Slot, to: Slot, _holes: u64) {
        self.reg.inc("slots", width(from, to));
    }

    fn on_release_batch(&mut self, _t: Slot, releases: &[ReleaseRec]) {
        self.reg.inc(
            "releases",
            u64::try_from(releases.len()).unwrap_or(u64::MAX),
        );
        let era = releases.iter().filter(|r| r.era_first).count();
        if era > 0 {
            self.reg
                .inc("releases.era_first", u64::try_from(era).unwrap_or(u64::MAX));
        }
    }

    fn on_span_armed(&mut self, t0: Slot) {
        self.armed = Some((t0, self.reg.clone()));
    }

    fn on_busy_span_jump(&mut self, t0: Slot, _t1: Slot, periods: u64, digest: &SpanDigest) {
        match self.armed.take() {
            Some((at, base)) if at == t0 => {
                // Everything recorded since arming is exactly one
                // verified period's worth of hooks; the jump repeats
                // that period `periods` more times.
                let delta = self.reg.delta_since(&base);
                self.reg.add_scaled(&delta, periods);
            }
            _ => self.apply_digest(periods, digest),
        }
    }

    fn on_miss(&mut self, _task: TaskId, _index: u64, _t: Slot, _deadline: Slot) {
        self.reg.inc("misses", 1);
    }

    fn on_schedule(&mut self, _task: TaskId, _index: u64, _t: Slot) {
        self.reg.inc("schedules", 1);
    }

    fn on_preempt(&mut self, _task: TaskId, _t: Slot) {
        self.reg.inc("preemptions", 1);
    }

    fn on_halt(&mut self, _task: TaskId, _index: u64, _t: Slot) {
        self.reg.inc("halts", 1);
    }

    fn on_stale_pop(&mut self, _task: TaskId, _index: u64, _t: Slot) {
        self.reg.inc("queue.stale_pops", 1);
    }

    fn on_stale_drop(&mut self, _task: TaskId, _index: u64, _t: Slot) {
        self.reg.inc("queue.stale_drops", 1);
    }

    fn on_reweight_initiated(
        &mut self,
        _task: TaskId,
        t: Slot,
        rule: Rule,
        cost: ReweightCost,
        enact_at: Slot,
    ) {
        self.reg.inc("reweight.initiated", 1);
        match rule {
            Rule::O => self.reg.inc("reweight.rule.O", 1),
            Rule::I => self.reg.inc("reweight.rule.I", 1),
            Rule::Lj => self.reg.inc("reweight.rule.LJ", 1),
            Rule::Immediate => self.reg.inc("reweight.rule.immediate", 1),
        }
        self.reg.record(
            "reweight.direct_cost",
            cost.queue_ops.saturating_add(cost.halts),
        );
        self.reg.record("reweight.latency", width(t, enact_at));
    }

    fn on_reweight_enacted(&mut self, _task: TaskId, _t: Slot, _initiated_at: Slot) {
        self.reg.inc("reweight.enacted", 1);
    }

    fn on_tracker_advance(&mut self, _task: TaskId, from: Slot, to: Slot) {
        self.reg.inc("tracker.advances", 1);
        self.reg.record("tracker.jump_width", width(from, to));
    }

    fn on_exec_overrun(&mut self, _task: TaskId, _t: Slot) {
        self.reg.inc("exec.overruns", 1);
    }

    fn on_exec_skip(&mut self, _task: TaskId, _t: Slot) {
        self.reg.inc("exec.skips", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i, "lo bound of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 7, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1009);
        assert_eq!(h.max(), 1000);
        assert_eq!(
            h.buckets(),
            vec![(0, 0, 1), (1, 1, 2), (4, 7, 1), (512, 1023, 1)]
        );
    }

    #[test]
    fn registry_counters_and_snapshot_are_sorted() {
        let mut r = Registry::new();
        r.inc("zeta", 2);
        r.inc("alpha", 1);
        r.inc("zeta", 3);
        r.record("lat", 5);
        let text = r.snapshot_text();
        assert_eq!(r.counter("zeta"), 5);
        assert!(text.starts_with("counter alpha = 1\ncounter zeta = 5\n"));
        assert!(text.contains("hist lat: count=1 sum=5 max=5 [4..7]=1"));
    }

    #[test]
    fn registry_json_round_trips() {
        let mut r = Registry::new();
        r.inc("b", 7);
        r.inc("a", 3);
        r.record("h", 0);
        r.record("h", 9);
        let json = r.to_json();
        let text = json.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = Registry::from_json(&parsed).unwrap();
        assert_eq!(back.counter("a"), 3);
        assert_eq!(back.counter("b"), 7);
        assert_eq!(back.histogram("h").unwrap().count(), 2);
        assert_eq!(back.histogram("h").unwrap().sum(), 9);
        // Canonical form survives the round trip byte-for-byte.
        assert_eq!(back.to_json().to_string_pretty(), text);
    }

    #[test]
    fn metrics_probe_aggregates_rules_and_costs() {
        let mut p = MetricsProbe::new();
        p.on_slot_start(0);
        p.on_slot_start(1);
        p.on_reweight_initiated(
            TaskId(0),
            1,
            Rule::O,
            ReweightCost {
                queue_ops: 0,
                halts: 1,
            },
            9,
        );
        p.on_reweight_enacted(TaskId(0), 9, 1);
        p.on_tracker_advance(TaskId(0), 1, 9);
        let reg = p.into_registry();
        assert_eq!(reg.counter("slots"), 2);
        assert_eq!(reg.counter("reweight.initiated"), 1);
        assert_eq!(reg.counter("reweight.rule.O"), 1);
        assert_eq!(reg.counter("reweight.enacted"), 1);
        assert_eq!(reg.histogram("reweight.latency").unwrap().max(), 8);
        assert_eq!(reg.histogram("tracker.jump_width").unwrap().sum(), 8);
    }

    /// `record_n` is bit-identical to `n` calls of `record`.
    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new();
        let mut slow = Histogram::new();
        for (value, n) in [(0, 3), (7, 2), (1024, 5), (u64::MAX, 1)] {
            bulk.record_n(value, n);
            for _ in 0..n {
                slow.record(value);
            }
        }
        assert_eq!(bulk, slow);
    }

    /// Snapshot → delta → scale-by-k equals replaying the same samples
    /// k more times — the exactness contract the busy-span jump path
    /// relies on, for counters and histograms alike.
    #[test]
    fn delta_scaling_matches_per_slot_replay() {
        let mut fast = Registry::new();
        let mut slow = Registry::new();
        // Shared prefix (the pre-span run).
        for r in [&mut fast, &mut slow] {
            r.inc("slots", 17);
            r.inc("schedules", 11);
            r.record("tracker.jump_width", 9);
            r.record("tracker.jump_width", 200);
        }
        // One verified period, recorded per-slot in both.
        let base = fast.clone();
        let period = |r: &mut Registry| {
            r.inc("slots", 6);
            r.inc("schedules", 4);
            r.inc("releases", 2);
            r.record("tracker.jump_width", 3);
            r.record("tracker.jump_width", 3);
        };
        period(&mut fast);
        period(&mut slow);
        // Jump k = 5 periods: fast scales its delta, slow replays.
        let delta = fast.delta_since(&base);
        fast.add_scaled(&delta, 5);
        for _ in 0..5 {
            period(&mut slow);
        }
        assert_eq!(fast.snapshot_text(), slow.snapshot_text());
    }

    /// The probe-level protocol: arm → per-slot period → jump produces
    /// the same registry as a pure per-slot run of the whole span.
    #[test]
    fn span_jump_is_bit_identical_to_per_slot_oracle() {
        let mut fast = MetricsProbe::new();
        let mut oracle = MetricsProbe::new();
        let one_period = |p: &mut MetricsProbe, t0: Slot| {
            p.on_slot_start(t0);
            p.on_release(TaskId(0), 3, t0, t0 + 4, false);
            p.on_schedule(TaskId(0), 3, t0);
            p.on_slot_start(t0 + 1);
            p.on_preempt(TaskId(0), t0 + 1);
            p.on_tracker_advance(TaskId(0), t0, t0 + 2);
        };
        for p in [&mut fast, &mut oracle] {
            p.on_slot_start(100);
        }
        // Fast path: arm at 102, simulate one period, jump 7 more.
        fast.on_span_armed(102);
        one_period(&mut fast, 102);
        let digest = SpanDigest {
            period: 2,
            ..SpanDigest::default()
        };
        fast.on_busy_span_jump(102, 104, 7, &digest);
        // Oracle: all 8 periods per-slot.
        for k in 0..8 {
            one_period(&mut oracle, 102 + 2 * k);
        }
        assert_eq!(
            fast.registry().snapshot_text(),
            oracle.registry().snapshot_text()
        );
    }

    /// A jump with a stale (or missing) arm snapshot falls back to the
    /// digest's counters instead of scaling the wrong window.
    #[test]
    fn mismatched_arm_slot_uses_digest_fallback() {
        let mut p = MetricsProbe::new();
        p.on_span_armed(10);
        p.on_slot_start(50); // drift between arm and jump
        let digest = SpanDigest {
            period: 4,
            scheduled_quanta: 3,
            ..SpanDigest::default()
        };
        p.on_busy_span_jump(40, 44, 2, &digest); // armed at 10 ≠ 40
        assert_eq!(p.registry().counter("slots"), 1 + 8);
        assert_eq!(p.registry().counter("schedules"), 6);
    }

    #[test]
    fn quiet_span_and_release_batch_aggregate_exactly() {
        let mut p = MetricsProbe::new();
        p.on_quiet_span(10, 25, 30);
        p.on_release_batch(
            25,
            &[
                ReleaseRec {
                    task: TaskId(0),
                    index: 1,
                    deadline: 29,
                    era_first: true,
                },
                ReleaseRec {
                    task: TaskId(1),
                    index: 6,
                    deadline: 27,
                    era_first: false,
                },
            ],
        );
        p.on_miss(TaskId(1), 6, 27, 27);
        let reg = p.registry();
        assert_eq!(reg.counter("slots"), 15);
        assert_eq!(reg.counter("releases"), 2);
        assert_eq!(reg.counter("releases.era_first"), 1);
        assert_eq!(reg.counter("misses"), 1);
    }
}
