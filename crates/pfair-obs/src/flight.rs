//! Flight recorder: a bounded ring of the most recent structured
//! events, frozen into an *incident* when something goes wrong.
//!
//! A [`FlightRecorder`] is a [`Probe`] that keeps the last `N` typed
//! [`ObsEvent`]s (span-aware, so horizon-scale closed-form runs cost
//! one ring entry per span, not per slot). When a deadline miss or a
//! drift-budget breach is observed, the current ring contents are
//! copied into a [`FlightIncident`] — the black-box snapshot of what
//! led up to the failure — and recording continues. The whole state
//! dumps to `pfair-json` ([`FlightRecorder::dump`]), which
//! `pfair trace --flight` writes to disk; an explicit dump needs no
//! incident at all.
//!
//! Everything is integer-exact and deterministic: the ring is a
//! fixed-capacity `VecDeque`, incidents are capped, and overflow is
//! counted (`dropped` events, `suppressed` incidents) rather than
//! silently discarded.

use crate::chrome::ObsEvent;
use crate::probe::{Probe, ReweightCost, Rule, SpanDigest};
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_json::{obj, Json, ToJson};
use std::collections::VecDeque;

/// What froze the ring into a [`FlightIncident`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightTrigger {
    /// A subtask missed its deadline.
    DeadlineMiss,
    /// An Eqn (5) drift sample exceeded the configured budget.
    DriftBreach,
    /// An explicit capture request ([`FlightRecorder::capture_now`]).
    Request,
}

impl FlightTrigger {
    /// Canonical label (`"deadline_miss"`, `"drift_breach"`,
    /// `"request"`).
    pub fn label(self) -> &'static str {
        match self {
            FlightTrigger::DeadlineMiss => "deadline_miss",
            FlightTrigger::DriftBreach => "drift_breach",
            FlightTrigger::Request => "request",
        }
    }
}

/// Flight-recorder configuration.
#[derive(Clone, Copy, Debug)]
pub struct FlightConfig {
    /// Ring capacity: how many recent events are retained.
    pub capacity: usize,
    /// Drift budget: a sample with `|drift| > budget` freezes the
    /// ring. `None` disables drift triggering.
    pub drift_budget: Option<Rational>,
    /// Maximum incidents retained; further triggers are counted as
    /// suppressed instead of allocating without bound.
    pub max_incidents: usize,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            capacity: 256,
            drift_budget: None,
            max_incidents: 8,
        }
    }
}

/// A frozen copy of the ring at trigger time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightIncident {
    /// What triggered the capture.
    pub trigger: FlightTrigger,
    /// Slot the trigger was observed at.
    pub t: Slot,
    /// Ring contents at capture, oldest first (the triggering event
    /// itself is the last entry).
    pub events: Vec<ObsEvent>,
}

impl ToJson for FlightIncident {
    fn to_json(&self) -> Json {
        obj([
            ("trigger", Json::Str(self.trigger.label().into())),
            ("t", Json::Int(i128::from(self.t))),
            (
                "events",
                Json::Array(self.events.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

/// The flight-recorder probe. See the module docs.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    ring: VecDeque<ObsEvent>,
    incidents: Vec<FlightIncident>,
    /// Events evicted from the ring since the start of the run.
    dropped: u64,
    /// Triggers ignored because `max_incidents` was reached.
    suppressed: u64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_config(FlightConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder with the default configuration (256-event ring, no
    /// drift budget, 8 incidents).
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder with an explicit configuration (capacity is clamped
    /// to at least 1).
    pub fn with_config(cfg: FlightConfig) -> FlightRecorder {
        let capacity = cfg.capacity.max(1);
        FlightRecorder {
            cfg: FlightConfig { capacity, ..cfg },
            ring: VecDeque::with_capacity(capacity),
            incidents: Vec::new(),
            dropped: 0,
            suppressed: 0,
        }
    }

    /// Current ring contents, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &ObsEvent> {
        self.ring.iter()
    }

    /// Captured incidents, in trigger order.
    pub fn incidents(&self) -> &[FlightIncident] {
        &self.incidents
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Triggers suppressed after `max_incidents` was reached.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Explicitly freezes the current ring into an incident (trigger
    /// [`FlightTrigger::Request`]) at slot `t`.
    pub fn capture_now(&mut self, t: Slot) {
        self.capture(FlightTrigger::Request, t);
    }

    /// The full recorder state as JSON: configuration echoes, the
    /// live ring, and every captured incident.
    pub fn dump(&self) -> Json {
        obj([
            (
                "capacity",
                Json::Int(i128::try_from(self.cfg.capacity).unwrap_or(i128::MAX)),
            ),
            ("dropped", Json::Int(i128::from(self.dropped))),
            ("suppressed", Json::Int(i128::from(self.suppressed))),
            ("drift_budget", self.cfg.drift_budget.to_json()),
            (
                "events",
                Json::Array(self.ring.iter().map(ToJson::to_json).collect()),
            ),
            (
                "incidents",
                Json::Array(self.incidents.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }

    fn push(&mut self, ev: ObsEvent) {
        while self.ring.len() >= self.cfg.capacity {
            self.ring.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.ring.push_back(ev);
    }

    fn capture(&mut self, trigger: FlightTrigger, t: Slot) {
        if self.incidents.len() >= self.cfg.max_incidents {
            self.suppressed = self.suppressed.saturating_add(1);
            return;
        }
        self.incidents.push(FlightIncident {
            trigger,
            t,
            events: self.ring.iter().cloned().collect(),
        });
    }
}

impl Probe for FlightRecorder {
    /// Span-aware: a closed-form span costs one ring entry, so the
    /// recorder never forces the engine back to per-slot stepping.
    const SPAN_AWARE: bool = true;

    fn on_release(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot, era_first: bool) {
        self.push(ObsEvent::Release {
            task,
            index,
            t,
            deadline,
            era_first,
        });
    }

    fn on_schedule(&mut self, task: TaskId, index: u64, t: Slot) {
        self.push(ObsEvent::Schedule { task, index, t });
    }

    fn on_preempt(&mut self, task: TaskId, t: Slot) {
        self.push(ObsEvent::Preempt { task, t });
    }

    fn on_halt(&mut self, task: TaskId, index: u64, t: Slot) {
        self.push(ObsEvent::Halt { task, index, t });
    }

    fn on_stale_pop(&mut self, task: TaskId, index: u64, t: Slot) {
        self.push(ObsEvent::StalePop { task, index, t });
    }

    fn on_stale_drop(&mut self, task: TaskId, index: u64, t: Slot) {
        self.push(ObsEvent::StaleDrop { task, index, t });
    }

    fn on_reweight_initiated(
        &mut self,
        task: TaskId,
        t: Slot,
        rule: Rule,
        cost: ReweightCost,
        enact_at: Slot,
    ) {
        self.push(ObsEvent::ReweightInitiated {
            task,
            t,
            rule,
            cost,
            enact_at,
        });
    }

    fn on_reweight_enacted(&mut self, task: TaskId, t: Slot, initiated_at: Slot) {
        self.push(ObsEvent::ReweightEnacted {
            task,
            t,
            initiated_at,
        });
    }

    fn on_tracker_advance(&mut self, task: TaskId, from: Slot, to: Slot) {
        self.push(ObsEvent::TrackerAdvance { task, from, to });
    }

    fn on_quiet_span(&mut self, from: Slot, to: Slot, holes: u64) {
        self.push(ObsEvent::QuietSpan { from, to, holes });
    }

    fn on_busy_span_jump(&mut self, t0: Slot, t1: Slot, periods: u64, digest: &SpanDigest) {
        self.push(ObsEvent::BusySpanJump {
            t0,
            t1,
            periods,
            period: digest.period,
            releases: digest.releases_total(),
            schedules: digest.scheduled_quanta,
            queue_ops: digest.queue_pushes.saturating_add(digest.queue_pops),
        });
    }

    fn on_miss(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot) {
        self.push(ObsEvent::Miss {
            task,
            index,
            t,
            deadline,
        });
        self.capture(FlightTrigger::DeadlineMiss, t);
    }

    fn on_drift_sample(&mut self, task: TaskId, t: Slot, drift: Rational) {
        self.push(ObsEvent::DriftSample { task, t, drift });
        if let Some(budget) = self.cfg.drift_budget {
            if drift.abs() > budget {
                self.capture(FlightTrigger::DriftBreach, t);
            }
        }
    }

    fn on_exec_overrun(&mut self, task: TaskId, t: Slot) {
        self.push(ObsEvent::ExecOverrun { task, t });
    }

    fn on_exec_skip(&mut self, task: TaskId, t: Slot) {
        self.push(ObsEvent::ExecSkip { task, t });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::rational::rat;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut fr = FlightRecorder::with_config(FlightConfig {
            capacity: 4,
            ..FlightConfig::default()
        });
        for t in 0..10 {
            fr.on_schedule(TaskId(0), 1, t);
        }
        assert_eq!(fr.recent().count(), 4);
        assert_eq!(fr.dropped(), 6);
        // Oldest entries were evicted: the ring starts at t = 6.
        let first = fr.recent().next().cloned();
        assert_eq!(
            first,
            Some(ObsEvent::Schedule {
                task: TaskId(0),
                index: 1,
                t: 6
            })
        );
    }

    #[test]
    fn miss_freezes_the_ring_into_an_incident() {
        let mut fr = FlightRecorder::new();
        fr.on_schedule(TaskId(0), 1, 10);
        fr.on_preempt(TaskId(0), 11);
        fr.on_miss(TaskId(0), 2, 12, 12);
        assert_eq!(fr.incidents().len(), 1);
        let inc = &fr.incidents()[0];
        assert_eq!(inc.trigger, FlightTrigger::DeadlineMiss);
        assert_eq!(inc.t, 12);
        // The incident holds the lead-up *including* the miss itself.
        assert_eq!(inc.events.len(), 3);
        assert!(matches!(inc.events[2], ObsEvent::Miss { .. }));
    }

    #[test]
    fn drift_budget_triggers_and_incidents_are_capped() {
        let mut fr = FlightRecorder::with_config(FlightConfig {
            drift_budget: Some(rat(1, 2)),
            max_incidents: 2,
            ..FlightConfig::default()
        });
        fr.on_drift_sample(TaskId(0), 5, rat(1, 4)); // within budget
        assert!(fr.incidents().is_empty());
        for t in [6, 7, 8] {
            fr.on_drift_sample(TaskId(0), t, rat(-2, 3)); // |.| > 1/2
        }
        assert_eq!(fr.incidents().len(), 2);
        assert_eq!(fr.suppressed(), 1);
        assert_eq!(fr.incidents()[0].trigger, FlightTrigger::DriftBreach);
    }

    #[test]
    fn spans_cost_one_entry_and_dump_has_expected_shape() {
        let mut fr = FlightRecorder::new();
        fr.on_quiet_span(0, 100_000, 400_000);
        fr.on_busy_span_jump(100_000, 100_012, 5000, &SpanDigest::default());
        fr.capture_now(160_012);
        assert_eq!(fr.recent().count(), 2);

        let dump = fr.dump();
        let text = dump.to_string_pretty();
        let parsed = pfair_json::Json::parse(&text).expect("dump parses");
        assert_eq!(parsed.get("dropped").and_then(Json::as_int), Some(0));
        let Some(Json::Array(events)) = parsed.get("events") else {
            panic!("events missing");
        };
        assert_eq!(events.len(), 2);
        let Some(Json::Array(incidents)) = parsed.get("incidents") else {
            panic!("incidents missing");
        };
        assert_eq!(incidents.len(), 1);
        assert_eq!(
            incidents[0].get("trigger").and_then(|j| match j {
                Json::Str(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("request")
        );
    }
}
