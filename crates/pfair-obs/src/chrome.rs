//! Event recording and Chrome trace-event export.
//!
//! [`TraceRecorder`] is a [`Probe`] that keeps the full typed event
//! stream plus one [`ReweightSpan`] per reweighting event, attributing
//! both the *direct* cost reported at initiation and the *deferred*
//! cost that surfaces later (stale queue entries stranded by the
//! event's halts, the era-opening release push at enactment) back to
//! the owning span. [`TraceRecorder::chrome_trace`] renders the whole
//! thing as Chrome trace-event JSON — open the file in
//! `chrome://tracing` or <https://ui.perfetto.dev> — with schedule
//! lanes on pid 1 (one tid per task), tracker jumps on pid 2, and
//! reweight spans stretching from initiation to enactment carrying
//! `rule` and per-event cost in their args.
//!
//! Everything is integer-exact: timestamps are slot numbers, durations
//! are slot counts, and the export goes through `pfair-json`, whose
//! only number type is `i128`.

use crate::probe::{Probe, ReweightCost, Rule, SpanDigest};
use pfair_core::rational::Rational;
use pfair_core::task::TaskId;
use pfair_core::time::Slot;
use pfair_json::{obj, FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;

/// One typed engine/executor event, in emission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsEvent {
    /// Subtask release (`era_first` marks an era-opening release).
    Release {
        /// Task released.
        task: TaskId,
        /// Subtask index.
        index: u64,
        /// Release slot.
        t: Slot,
        /// Subtask deadline.
        deadline: Slot,
        /// Whether this release opens an era.
        era_first: bool,
    },
    /// Subtask scheduled in a slot.
    Schedule {
        /// Task scheduled.
        task: TaskId,
        /// Subtask index.
        index: u64,
        /// Slot it ran in.
        t: Slot,
    },
    /// Task ran in the previous slot but lost its processor.
    Preempt {
        /// Task preempted.
        task: TaskId,
        /// Slot of the preemption.
        t: Slot,
    },
    /// Subtask halted (rule O or a leave/LJ withdrawal).
    Halt {
        /// Task halted.
        task: TaskId,
        /// Subtask index.
        index: u64,
        /// Slot of the halt.
        t: Slot,
    },
    /// Stale queue entry discarded by a pop.
    StalePop {
        /// Owning task.
        task: TaskId,
        /// Subtask index.
        index: u64,
        /// Slot of the pop.
        t: Slot,
    },
    /// Stale queue entry dropped by a compaction sweep.
    StaleDrop {
        /// Owning task.
        task: TaskId,
        /// Subtask index.
        index: u64,
        /// Slot of the sweep.
        t: Slot,
    },
    /// Reweighting initiation, with rule and direct cost.
    ReweightInitiated {
        /// Task reweighted.
        task: TaskId,
        /// Initiation slot.
        t: Slot,
        /// Rule that resolved it.
        rule: Rule,
        /// Direct cost measured while the rules ran.
        cost: ReweightCost,
        /// Projected enactment slot.
        enact_at: Slot,
    },
    /// Reweighting enactment.
    ReweightEnacted {
        /// Task reweighted.
        task: TaskId,
        /// Enactment slot.
        t: Slot,
        /// Slot the event was initiated at.
        initiated_at: Slot,
    },
    /// Closed-form tracker jump.
    TrackerAdvance {
        /// Task whose trackers jumped.
        task: TaskId,
        /// Jump start boundary.
        from: Slot,
        /// Jump end boundary.
        to: Slot,
    },
    /// Executor tick overran its quantum budget.
    ExecOverrun {
        /// Task that overran.
        task: TaskId,
        /// Slot of the overrun.
        t: Slot,
    },
    /// Executor quantum lost to a still-running previous tick.
    ExecSkip {
        /// Task that lost the quantum.
        task: TaskId,
        /// Slot of the skip.
        t: Slot,
    },
    /// A quiet span `[from, to)` skipped in closed form — one event
    /// for the whole span instead of O(width) slot starts.
    QuietSpan {
        /// First skipped slot.
        from: Slot,
        /// One past the last skipped slot.
        to: Slot,
        /// Idle processor-slots over the span.
        holes: u64,
    },
    /// A verified busy-span jump — one event summarizing `periods`
    /// closed-form repetitions of the verified period, instead of
    /// O(periods·period) per-slot events.
    BusySpanJump {
        /// Arm slot (verification window start).
        t0: Slot,
        /// First jumped slot (end of the verified period).
        t1: Slot,
        /// Periods jumped in closed form.
        periods: u64,
        /// Period length in slots.
        period: Slot,
        /// Subtask releases per period (from the digest).
        releases: u64,
        /// Scheduled quanta per period (from the digest).
        schedules: u64,
        /// Queue pushes + pops per period (from the digest).
        queue_ops: u64,
    },
    /// A deadline miss.
    Miss {
        /// Task that missed.
        task: TaskId,
        /// Subtask index.
        index: u64,
        /// Slot the miss was detected at.
        t: Slot,
        /// The missed deadline.
        deadline: Slot,
    },
    /// An Eqn (5) drift sample at an era-opening release.
    DriftSample {
        /// Task sampled.
        task: TaskId,
        /// Sample slot.
        t: Slot,
        /// Exact drift (`ps_total − icsw_total`).
        drift: Rational,
    },
}

fn slot_json(t: Slot) -> Json {
    Json::Int(i128::from(t))
}

fn u64_json(v: u64) -> Json {
    Json::Int(i128::from(v))
}

impl ToJson for ObsEvent {
    fn to_json(&self) -> Json {
        match self {
            ObsEvent::Release {
                task,
                index,
                t,
                deadline,
                era_first,
            } => obj([
                ("kind", Json::Str("release".into())),
                ("task", task.to_json()),
                ("index", u64_json(*index)),
                ("t", slot_json(*t)),
                ("deadline", slot_json(*deadline)),
                ("era_first", Json::Bool(*era_first)),
            ]),
            ObsEvent::Schedule { task, index, t } => obj([
                ("kind", Json::Str("schedule".into())),
                ("task", task.to_json()),
                ("index", u64_json(*index)),
                ("t", slot_json(*t)),
            ]),
            ObsEvent::Preempt { task, t } => obj([
                ("kind", Json::Str("preempt".into())),
                ("task", task.to_json()),
                ("t", slot_json(*t)),
            ]),
            ObsEvent::Halt { task, index, t } => obj([
                ("kind", Json::Str("halt".into())),
                ("task", task.to_json()),
                ("index", u64_json(*index)),
                ("t", slot_json(*t)),
            ]),
            ObsEvent::StalePop { task, index, t } => obj([
                ("kind", Json::Str("stale_pop".into())),
                ("task", task.to_json()),
                ("index", u64_json(*index)),
                ("t", slot_json(*t)),
            ]),
            ObsEvent::StaleDrop { task, index, t } => obj([
                ("kind", Json::Str("stale_drop".into())),
                ("task", task.to_json()),
                ("index", u64_json(*index)),
                ("t", slot_json(*t)),
            ]),
            ObsEvent::ReweightInitiated {
                task,
                t,
                rule,
                cost,
                enact_at,
            } => obj([
                ("kind", Json::Str("reweight_initiated".into())),
                ("task", task.to_json()),
                ("t", slot_json(*t)),
                ("rule", Json::Str(rule.label().into())),
                ("queue_ops", u64_json(cost.queue_ops)),
                ("halts", u64_json(cost.halts)),
                ("enact_at", slot_json(*enact_at)),
            ]),
            ObsEvent::ReweightEnacted {
                task,
                t,
                initiated_at,
            } => obj([
                ("kind", Json::Str("reweight_enacted".into())),
                ("task", task.to_json()),
                ("t", slot_json(*t)),
                ("initiated_at", slot_json(*initiated_at)),
            ]),
            ObsEvent::TrackerAdvance { task, from, to } => obj([
                ("kind", Json::Str("tracker_advance".into())),
                ("task", task.to_json()),
                ("from", slot_json(*from)),
                ("to", slot_json(*to)),
            ]),
            ObsEvent::ExecOverrun { task, t } => obj([
                ("kind", Json::Str("exec_overrun".into())),
                ("task", task.to_json()),
                ("t", slot_json(*t)),
            ]),
            ObsEvent::ExecSkip { task, t } => obj([
                ("kind", Json::Str("exec_skip".into())),
                ("task", task.to_json()),
                ("t", slot_json(*t)),
            ]),
            ObsEvent::QuietSpan { from, to, holes } => obj([
                ("kind", Json::Str("quiet_span".into())),
                ("from", slot_json(*from)),
                ("to", slot_json(*to)),
                ("holes", u64_json(*holes)),
            ]),
            ObsEvent::BusySpanJump {
                t0,
                t1,
                periods,
                period,
                releases,
                schedules,
                queue_ops,
            } => obj([
                ("kind", Json::Str("busy_span_jump".into())),
                ("t0", slot_json(*t0)),
                ("t1", slot_json(*t1)),
                ("periods", u64_json(*periods)),
                ("period", slot_json(*period)),
                ("releases", u64_json(*releases)),
                ("schedules", u64_json(*schedules)),
                ("queue_ops", u64_json(*queue_ops)),
            ]),
            ObsEvent::Miss {
                task,
                index,
                t,
                deadline,
            } => obj([
                ("kind", Json::Str("miss".into())),
                ("task", task.to_json()),
                ("index", u64_json(*index)),
                ("t", slot_json(*t)),
                ("deadline", slot_json(*deadline)),
            ]),
            ObsEvent::DriftSample { task, t, drift } => obj([
                ("kind", Json::Str("drift_sample".into())),
                ("task", task.to_json()),
                ("t", slot_json(*t)),
                ("drift", drift.to_json()),
            ]),
        }
    }
}

impl FromJson for ObsEvent {
    fn from_json(value: &Json) -> Result<ObsEvent, JsonError> {
        let kind: String = value.field("kind")?;
        // Span-level events carry no task; everything else does.
        match kind.as_str() {
            "quiet_span" => {
                return Ok(ObsEvent::QuietSpan {
                    from: value.field("from")?,
                    to: value.field("to")?,
                    holes: value.field("holes")?,
                });
            }
            "busy_span_jump" => {
                return Ok(ObsEvent::BusySpanJump {
                    t0: value.field("t0")?,
                    t1: value.field("t1")?,
                    periods: value.field("periods")?,
                    period: value.field("period")?,
                    releases: value.field("releases")?,
                    schedules: value.field("schedules")?,
                    queue_ops: value.field("queue_ops")?,
                });
            }
            _ => {}
        }
        let task: TaskId = value.field("task")?;
        match kind.as_str() {
            "release" => Ok(ObsEvent::Release {
                task,
                index: value.field("index")?,
                t: value.field("t")?,
                deadline: value.field("deadline")?,
                era_first: value.field("era_first")?,
            }),
            "schedule" => Ok(ObsEvent::Schedule {
                task,
                index: value.field("index")?,
                t: value.field("t")?,
            }),
            "preempt" => Ok(ObsEvent::Preempt {
                task,
                t: value.field("t")?,
            }),
            "halt" => Ok(ObsEvent::Halt {
                task,
                index: value.field("index")?,
                t: value.field("t")?,
            }),
            "stale_pop" => Ok(ObsEvent::StalePop {
                task,
                index: value.field("index")?,
                t: value.field("t")?,
            }),
            "stale_drop" => Ok(ObsEvent::StaleDrop {
                task,
                index: value.field("index")?,
                t: value.field("t")?,
            }),
            "reweight_initiated" => {
                let rule_label: String = value.field("rule")?;
                let rule = Rule::from_label(&rule_label)
                    .ok_or_else(|| JsonError::new(format!("unknown rule `{rule_label}`")))?;
                Ok(ObsEvent::ReweightInitiated {
                    task,
                    t: value.field("t")?,
                    rule,
                    cost: ReweightCost {
                        queue_ops: value.field("queue_ops")?,
                        halts: value.field("halts")?,
                    },
                    enact_at: value.field("enact_at")?,
                })
            }
            "reweight_enacted" => Ok(ObsEvent::ReweightEnacted {
                task,
                t: value.field("t")?,
                initiated_at: value.field("initiated_at")?,
            }),
            "tracker_advance" => Ok(ObsEvent::TrackerAdvance {
                task,
                from: value.field("from")?,
                to: value.field("to")?,
            }),
            "exec_overrun" => Ok(ObsEvent::ExecOverrun {
                task,
                t: value.field("t")?,
            }),
            "exec_skip" => Ok(ObsEvent::ExecSkip {
                task,
                t: value.field("t")?,
            }),
            "miss" => Ok(ObsEvent::Miss {
                task,
                index: value.field("index")?,
                t: value.field("t")?,
                deadline: value.field("deadline")?,
            }),
            "drift_sample" => Ok(ObsEvent::DriftSample {
                task,
                t: value.field("t")?,
                drift: value.field("drift")?,
            }),
            other => Err(JsonError::new(format!("unknown event kind `{other}`"))),
        }
    }
}

/// One reweighting event from initiation to enactment, with its
/// attributed cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReweightSpan {
    /// Task reweighted.
    pub task: TaskId,
    /// Rule that resolved the initiation.
    pub rule: Rule,
    /// Initiation slot.
    pub initiated_at: Slot,
    /// Enactment slot (`None` while pending or when superseded).
    pub enacted_at: Option<Slot>,
    /// Subtasks halted by this event.
    pub halts: u64,
    /// Queue operations attributed to this event: direct ops measured
    /// while the rules ran, plus deferred stale pops/drops of entries
    /// its halts stranded, plus the era-opening push at enactment.
    pub queue_ops: u64,
    /// Whether a later initiation for the same task replaced this one
    /// before it was enacted.
    pub superseded: bool,
}

impl ReweightSpan {
    /// Total attributed cost in operations (queue ops + halts).
    pub fn total_cost(&self) -> u64 {
        self.queue_ops.saturating_add(self.halts)
    }
}

/// A [`Probe`] that records the full event stream and builds
/// per-reweighting-event cost spans. See the module docs for the
/// attribution model.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    events: Vec<ObsEvent>,
    spans: Vec<ReweightSpan>,
    /// Pending (not yet enacted) span per task.
    open: BTreeMap<TaskId, usize>,
    /// Halted subtask → owning span, for deferred stale-entry cost.
    halted_by: BTreeMap<(TaskId, u64), usize>,
    /// Halts observed this slot and not yet claimed by an initiation.
    unclaimed_halts: Vec<(TaskId, u64, Slot)>,
    /// Most recently enacted span per task, for the era-opening push.
    last_enacted: BTreeMap<TaskId, usize>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// The recorded event stream, in emission order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// All reweighting spans, in initiation order.
    pub fn spans(&self) -> &[ReweightSpan] {
        &self.spans
    }

    /// The `k` most expensive reweighting events by total attributed
    /// cost (ties broken by earlier initiation, then lower task id).
    pub fn top_reweights(&self, k: usize) -> Vec<&ReweightSpan> {
        let mut sorted: Vec<&ReweightSpan> = self.spans.iter().collect();
        sorted.sort_by(|a, b| {
            b.total_cost()
                .cmp(&a.total_cost())
                .then(a.initiated_at.cmp(&b.initiated_at))
                .then(a.task.cmp(&b.task))
        });
        sorted.truncate(k);
        sorted
    }

    fn charge(&mut self, idx: usize, queue_ops: u64) {
        if let Some(span) = self.spans.get_mut(idx) {
            span.queue_ops = span.queue_ops.saturating_add(queue_ops);
        }
    }

    /// The Chrome trace-event JSON document for this recording.
    ///
    /// Layout: pid 1 carries the schedule — one thread per task with
    /// 1-slot `run` spans, reweight spans from initiation to
    /// enactment, and instants for halts/preemptions/era releases;
    /// pid 2 carries the closed-form tracker jumps as spans whose
    /// duration is the interval width. Timestamps are slot numbers.
    pub fn chrome_trace(&self) -> Json {
        let mut trace: Vec<Json> = Vec::new();
        let mut tids: Vec<TaskId> = Vec::new();
        let mut has_spans = false;
        for ev in &self.events {
            let task = match ev {
                ObsEvent::Release { task, .. }
                | ObsEvent::Schedule { task, .. }
                | ObsEvent::Preempt { task, .. }
                | ObsEvent::Halt { task, .. }
                | ObsEvent::StalePop { task, .. }
                | ObsEvent::StaleDrop { task, .. }
                | ObsEvent::ReweightInitiated { task, .. }
                | ObsEvent::ReweightEnacted { task, .. }
                | ObsEvent::TrackerAdvance { task, .. }
                | ObsEvent::ExecOverrun { task, .. }
                | ObsEvent::ExecSkip { task, .. }
                | ObsEvent::Miss { task, .. }
                | ObsEvent::DriftSample { task, .. } => Some(*task),
                ObsEvent::QuietSpan { .. } | ObsEvent::BusySpanJump { .. } => {
                    has_spans = true;
                    None
                }
            };
            if let Some(task) = task {
                if !tids.contains(&task) {
                    tids.push(task);
                }
            }
        }
        tids.sort_unstable();
        // Process/thread metadata so the viewers label the lanes.
        for (pid, pname) in [(1, "schedule"), (2, "ideal trackers")] {
            trace.push(obj([
                ("name", Json::Str("process_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::Int(pid)),
                ("tid", Json::Int(0)),
                ("args", obj([("name", Json::Str(pname.into()))])),
            ]));
            for task in &tids {
                trace.push(obj([
                    ("name", Json::Str("thread_name".into())),
                    ("ph", Json::Str("M".into())),
                    ("pid", Json::Int(pid)),
                    ("tid", task.to_json()),
                    ("args", obj([("name", Json::Str(format!("T{}", task.0)))])),
                ]));
            }
        }
        // Closed-form spans get their own single-lane process: one
        // slice per quiet span / busy-span jump, whatever the width.
        if has_spans {
            trace.push(obj([
                ("name", Json::Str("process_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::Int(3)),
                ("tid", Json::Int(0)),
                (
                    "args",
                    obj([("name", Json::Str("closed-form spans".into()))]),
                ),
            ]));
        }
        // Reweight spans: initiation → enactment, cost in args.
        for span in &self.spans {
            let end = span.enacted_at.unwrap_or(span.initiated_at);
            let dur = end.checked_sub(span.initiated_at).unwrap_or(0).max(1);
            trace.push(obj([
                ("name", Json::Str(format!("reweight {}", span.rule))),
                ("cat", Json::Str("reweight".into())),
                ("ph", Json::Str("X".into())),
                ("ts", slot_json(span.initiated_at)),
                ("dur", slot_json(dur)),
                ("pid", Json::Int(1)),
                ("tid", span.task.to_json()),
                (
                    "args",
                    obj([
                        ("rule", Json::Str(span.rule.label().into())),
                        ("halts", u64_json(span.halts)),
                        ("queue_ops", u64_json(span.queue_ops)),
                        ("total_cost", u64_json(span.total_cost())),
                        ("initiated_at", slot_json(span.initiated_at)),
                        ("enacted_at", span.enacted_at.to_json()),
                        ("superseded", Json::Bool(span.superseded)),
                    ]),
                ),
            ]));
        }
        for ev in &self.events {
            match ev {
                ObsEvent::Schedule { task, index, t } => {
                    trace.push(obj([
                        ("name", Json::Str("run".into())),
                        ("cat", Json::Str("schedule".into())),
                        ("ph", Json::Str("X".into())),
                        ("ts", slot_json(*t)),
                        ("dur", Json::Int(1)),
                        ("pid", Json::Int(1)),
                        ("tid", task.to_json()),
                        ("args", obj([("subtask", u64_json(*index))])),
                    ]));
                }
                ObsEvent::TrackerAdvance { task, from, to } => {
                    let dur = to.checked_sub(*from).unwrap_or(0).max(1);
                    trace.push(obj([
                        ("name", Json::Str("advance_to".into())),
                        ("cat", Json::Str("tracker".into())),
                        ("ph", Json::Str("X".into())),
                        ("ts", slot_json(*from)),
                        ("dur", slot_json(dur)),
                        ("pid", Json::Int(2)),
                        ("tid", task.to_json()),
                        (
                            "args",
                            obj([("width", slot_json(to.checked_sub(*from).unwrap_or(0)))]),
                        ),
                    ]));
                }
                ObsEvent::Halt { task, index, t } => {
                    trace.push(instant("halt", "reweight", *t, *task, Some(*index)));
                }
                ObsEvent::Preempt { task, t } => {
                    trace.push(instant("preempt", "schedule", *t, *task, None));
                }
                ObsEvent::Release {
                    task,
                    index,
                    t,
                    era_first: true,
                    ..
                } => {
                    trace.push(instant("era release", "release", *t, *task, Some(*index)));
                }
                ObsEvent::ExecOverrun { task, t } => {
                    trace.push(instant("overrun", "exec", *t, *task, None));
                }
                ObsEvent::ExecSkip { task, t } => {
                    trace.push(instant("skip", "exec", *t, *task, None));
                }
                ObsEvent::Miss { task, index, t, .. } => {
                    trace.push(instant("miss", "deadline", *t, *task, Some(*index)));
                }
                ObsEvent::QuietSpan { from, to, holes } => {
                    let dur = to.checked_sub(*from).unwrap_or(0).max(1);
                    trace.push(obj([
                        ("name", Json::Str("quiet span".into())),
                        ("cat", Json::Str("span".into())),
                        ("ph", Json::Str("X".into())),
                        ("ts", slot_json(*from)),
                        ("dur", slot_json(dur)),
                        ("pid", Json::Int(3)),
                        ("tid", Json::Int(0)),
                        (
                            "args",
                            obj([
                                ("width", slot_json(to.checked_sub(*from).unwrap_or(0))),
                                ("holes", u64_json(*holes)),
                            ]),
                        ),
                    ]));
                }
                ObsEvent::BusySpanJump {
                    t0,
                    t1,
                    periods,
                    period,
                    releases,
                    schedules,
                    queue_ops,
                } => {
                    let width = i64::try_from(*periods)
                        .ok()
                        .and_then(|k| k.checked_mul(*period))
                        .unwrap_or(0);
                    trace.push(obj([
                        ("name", Json::Str("busy-span jump".into())),
                        ("cat", Json::Str("span".into())),
                        ("ph", Json::Str("X".into())),
                        ("ts", slot_json(*t1)),
                        ("dur", slot_json(width.max(1))),
                        ("pid", Json::Int(3)),
                        ("tid", Json::Int(0)),
                        (
                            "args",
                            obj([
                                ("t0", slot_json(*t0)),
                                ("periods", u64_json(*periods)),
                                ("period", slot_json(*period)),
                                ("releases_per_period", u64_json(*releases)),
                                ("schedules_per_period", u64_json(*schedules)),
                                ("queue_ops_per_period", u64_json(*queue_ops)),
                            ]),
                        ),
                    ]));
                }
                _ => {}
            }
        }
        obj([
            ("displayTimeUnit", Json::Str("ms".into())),
            ("traceEvents", Json::Array(trace)),
        ])
    }
}

/// A `ph: "i"` thread-scoped instant event.
fn instant(name: &str, cat: &str, t: Slot, task: TaskId, index: Option<u64>) -> Json {
    let args = match index {
        Some(i) => obj([("subtask", u64_json(i))]),
        None => Json::Object(Vec::new()),
    };
    obj([
        ("name", Json::Str(name.into())),
        ("cat", Json::Str(cat.into())),
        ("ph", Json::Str("i".into())),
        ("s", Json::Str("t".into())),
        ("ts", slot_json(t)),
        ("pid", Json::Int(1)),
        ("tid", task.to_json()),
        ("args", args),
    ])
}

impl Probe for TraceRecorder {
    /// Span-aware: quiet spans and busy-span jumps become single
    /// collapsed events ([`ObsEvent::QuietSpan`],
    /// [`ObsEvent::BusySpanJump`]) instead of O(width) per-slot
    /// entries, so recording stays O(events), not O(horizon). The one
    /// verified period of each busy span is still recorded per-slot —
    /// the jump event's digest args summarize the repetitions.
    const SPAN_AWARE: bool = true;

    fn on_release(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot, era_first: bool) {
        self.events.push(ObsEvent::Release {
            task,
            index,
            t,
            deadline,
            era_first,
        });
        // The era-opening push is deferred cost of the reweighting
        // event whose enactment (this slot) released it.
        if era_first {
            if let Some(&idx) = self.last_enacted.get(&task) {
                if self.spans.get(idx).is_some_and(|s| s.enacted_at == Some(t)) {
                    self.charge(idx, 1);
                }
            }
        }
    }

    fn on_schedule(&mut self, task: TaskId, index: u64, t: Slot) {
        self.events.push(ObsEvent::Schedule { task, index, t });
    }

    fn on_preempt(&mut self, task: TaskId, t: Slot) {
        self.events.push(ObsEvent::Preempt { task, t });
    }

    fn on_halt(&mut self, task: TaskId, index: u64, t: Slot) {
        self.events.push(ObsEvent::Halt { task, index, t });
        self.unclaimed_halts.push((task, index, t));
    }

    fn on_stale_pop(&mut self, task: TaskId, index: u64, t: Slot) {
        self.events.push(ObsEvent::StalePop { task, index, t });
        if let Some(idx) = self.halted_by.remove(&(task, index)) {
            self.charge(idx, 1);
        }
    }

    fn on_stale_drop(&mut self, task: TaskId, index: u64, t: Slot) {
        self.events.push(ObsEvent::StaleDrop { task, index, t });
        if let Some(idx) = self.halted_by.remove(&(task, index)) {
            self.charge(idx, 1);
        }
    }

    fn on_reweight_initiated(
        &mut self,
        task: TaskId,
        t: Slot,
        rule: Rule,
        cost: ReweightCost,
        enact_at: Slot,
    ) {
        self.events.push(ObsEvent::ReweightInitiated {
            task,
            t,
            rule,
            cost,
            enact_at,
        });
        // A still-pending earlier event for this task is superseded.
        if let Some(prev) = self.open.remove(&task) {
            if let Some(span) = self.spans.get_mut(prev) {
                span.superseded = true;
            }
        }
        let idx = self.spans.len();
        self.spans.push(ReweightSpan {
            task,
            rule,
            initiated_at: t,
            enacted_at: None,
            halts: cost.halts,
            queue_ops: cost.queue_ops,
            superseded: false,
        });
        self.open.insert(task, idx);
        // Claim this slot's halts of the reweighted task: stale queue
        // entries they strand will be charged back to this span.
        self.unclaimed_halts.retain(|&(h_task, h_index, h_t)| {
            if h_task == task && h_t == t {
                self.halted_by.insert((h_task, h_index), idx);
                false
            } else {
                true
            }
        });
    }

    fn on_reweight_enacted(&mut self, task: TaskId, t: Slot, initiated_at: Slot) {
        self.events.push(ObsEvent::ReweightEnacted {
            task,
            t,
            initiated_at,
        });
        if let Some(idx) = self.open.remove(&task) {
            if let Some(span) = self.spans.get_mut(idx) {
                span.enacted_at = Some(t);
            }
            self.last_enacted.insert(task, idx);
        }
    }

    fn on_tracker_advance(&mut self, task: TaskId, from: Slot, to: Slot) {
        self.events
            .push(ObsEvent::TrackerAdvance { task, from, to });
    }

    fn on_quiet_span(&mut self, from: Slot, to: Slot, holes: u64) {
        self.events.push(ObsEvent::QuietSpan { from, to, holes });
    }

    fn on_busy_span_jump(&mut self, t0: Slot, t1: Slot, periods: u64, digest: &SpanDigest) {
        self.events.push(ObsEvent::BusySpanJump {
            t0,
            t1,
            periods,
            period: digest.period,
            releases: digest.releases_total(),
            schedules: digest.scheduled_quanta,
            queue_ops: digest.queue_pushes.saturating_add(digest.queue_pops),
        });
    }

    fn on_miss(&mut self, task: TaskId, index: u64, t: Slot, deadline: Slot) {
        self.events.push(ObsEvent::Miss {
            task,
            index,
            t,
            deadline,
        });
    }

    fn on_drift_sample(&mut self, task: TaskId, t: Slot, drift: Rational) {
        self.events.push(ObsEvent::DriftSample { task, t, drift });
    }

    fn on_exec_overrun(&mut self, task: TaskId, t: Slot) {
        self.events.push(ObsEvent::ExecOverrun { task, t });
    }

    fn on_exec_skip(&mut self, task: TaskId, t: Slot) {
        self.events.push(ObsEvent::ExecSkip { task, t });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::Release {
                task: TaskId(0),
                index: 1,
                t: 0,
                deadline: 4,
                era_first: true,
            },
            ObsEvent::Schedule {
                task: TaskId(0),
                index: 1,
                t: 0,
            },
            ObsEvent::Preempt {
                task: TaskId(1),
                t: 2,
            },
            ObsEvent::Halt {
                task: TaskId(0),
                index: 2,
                t: 3,
            },
            ObsEvent::StalePop {
                task: TaskId(0),
                index: 2,
                t: 4,
            },
            ObsEvent::StaleDrop {
                task: TaskId(1),
                index: 5,
                t: 4,
            },
            ObsEvent::ReweightInitiated {
                task: TaskId(0),
                t: 3,
                rule: Rule::O,
                cost: ReweightCost {
                    queue_ops: 2,
                    halts: 1,
                },
                enact_at: 8,
            },
            ObsEvent::ReweightEnacted {
                task: TaskId(0),
                t: 8,
                initiated_at: 3,
            },
            ObsEvent::TrackerAdvance {
                task: TaskId(0),
                from: 3,
                to: 8,
            },
            ObsEvent::ExecOverrun {
                task: TaskId(2),
                t: 5,
            },
            ObsEvent::ExecSkip {
                task: TaskId(2),
                t: 6,
            },
            ObsEvent::QuietSpan {
                from: 10,
                to: 40,
                holes: 60,
            },
            ObsEvent::BusySpanJump {
                t0: 40,
                t1: 52,
                periods: 1000,
                period: 12,
                releases: 7,
                schedules: 24,
                queue_ops: 14,
            },
            ObsEvent::Miss {
                task: TaskId(1),
                index: 9,
                t: 13,
                deadline: 13,
            },
            ObsEvent::DriftSample {
                task: TaskId(0),
                t: 8,
                drift: pfair_core::rational::rat(-1, 3),
            },
        ]
    }

    #[test]
    fn obs_events_round_trip_through_json() {
        for ev in sample_events() {
            let text = ev.to_json().to_string_pretty();
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(ObsEvent::from_json(&parsed).unwrap(), ev);
        }
    }

    #[test]
    fn recorder_attributes_direct_and_deferred_cost() {
        let mut rec = TraceRecorder::new();
        // Rule-O event at t=3: one halt, two direct queue ops.
        rec.on_halt(TaskId(0), 2, 3);
        rec.on_reweight_initiated(
            TaskId(0),
            3,
            Rule::O,
            ReweightCost {
                queue_ops: 2,
                halts: 1,
            },
            8,
        );
        // Deferred: the halted subtask's queue entry goes stale.
        rec.on_stale_pop(TaskId(0), 2, 5);
        // Unrelated stale entry — not attributed.
        rec.on_stale_drop(TaskId(1), 7, 5);
        rec.on_reweight_enacted(TaskId(0), 8, 3);
        // Era-opening push at the enactment slot is deferred cost too.
        rec.on_release(TaskId(0), 3, 8, 12, true);
        // A later era release is NOT attributed (wrong slot).
        rec.on_release(TaskId(0), 4, 10, 14, true);

        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        let span = &spans[0];
        assert_eq!(span.rule, Rule::O);
        assert_eq!(span.initiated_at, 3);
        assert_eq!(span.enacted_at, Some(8));
        assert_eq!(span.halts, 1);
        // 2 direct + 1 stale pop + 1 era push.
        assert_eq!(span.queue_ops, 4);
        assert_eq!(span.total_cost(), 5);
        assert!(!span.superseded);
    }

    #[test]
    fn superseded_spans_are_marked() {
        let mut rec = TraceRecorder::new();
        rec.on_reweight_initiated(TaskId(0), 2, Rule::I, ReweightCost::default(), 9);
        rec.on_reweight_initiated(TaskId(0), 4, Rule::O, ReweightCost::default(), 11);
        rec.on_reweight_enacted(TaskId(0), 11, 4);
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].superseded);
        assert_eq!(spans[0].enacted_at, None);
        assert!(!spans[1].superseded);
        assert_eq!(spans[1].enacted_at, Some(11));
    }

    #[test]
    fn top_reweights_sorts_by_cost_then_time() {
        let mut rec = TraceRecorder::new();
        rec.on_reweight_initiated(
            TaskId(0),
            1,
            Rule::I,
            ReweightCost {
                queue_ops: 1,
                halts: 0,
            },
            1,
        );
        rec.on_reweight_enacted(TaskId(0), 1, 1);
        rec.on_reweight_initiated(
            TaskId(1),
            2,
            Rule::O,
            ReweightCost {
                queue_ops: 3,
                halts: 2,
            },
            7,
        );
        rec.on_reweight_initiated(
            TaskId(2),
            3,
            Rule::Lj,
            ReweightCost {
                queue_ops: 4,
                halts: 1,
            },
            5,
        );
        let top = rec.top_reweights(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].task, TaskId(1));
        assert_eq!(top[0].total_cost(), 5);
        assert_eq!(top[1].task, TaskId(2));
    }

    fn as_str(v: &Json) -> Option<&str> {
        match v {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    #[test]
    fn chrome_trace_round_trips_and_has_expected_shape() {
        let mut rec = TraceRecorder::new();
        rec.on_release(TaskId(0), 1, 0, 4, true);
        rec.on_schedule(TaskId(0), 1, 0);
        rec.on_halt(TaskId(0), 2, 3);
        rec.on_reweight_initiated(
            TaskId(0),
            3,
            Rule::O,
            ReweightCost {
                queue_ops: 2,
                halts: 1,
            },
            8,
        );
        rec.on_reweight_enacted(TaskId(0), 8, 3);
        rec.on_tracker_advance(TaskId(0), 3, 8);

        let json = rec.chrome_trace();
        let text = json.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), json);

        let Some(Json::Array(events)) = json.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        let reweight = events
            .iter()
            .find(|e| e.get("cat").and_then(as_str) == Some("reweight"))
            .expect("reweight span present");
        assert_eq!(reweight.get("ph").and_then(as_str), Some("X"));
        assert_eq!(reweight.get("ts").and_then(Json::as_int), Some(3));
        assert_eq!(reweight.get("dur").and_then(Json::as_int), Some(5));
        let args = reweight.get("args").expect("args");
        assert_eq!(args.get("rule").and_then(as_str), Some("O"));
        assert_eq!(args.get("total_cost").and_then(Json::as_int), Some(3));
        let tracker = events
            .iter()
            .find(|e| e.get("cat").and_then(as_str) == Some("tracker"))
            .expect("tracker span present");
        assert_eq!(tracker.get("pid").and_then(Json::as_int), Some(2));
        assert_eq!(tracker.get("dur").and_then(Json::as_int), Some(5));
    }

    /// One collapsed slice per closed-form span, on the dedicated
    /// pid-3 lane, carrying the digest args — never O(width) slices.
    #[test]
    fn chrome_trace_collapses_spans_to_single_slices() {
        let mut rec = TraceRecorder::new();
        rec.on_slot_start(0);
        rec.on_schedule(TaskId(0), 1, 0);
        rec.on_quiet_span(1, 5001, 10_000);
        let digest = SpanDigest {
            period: 12,
            queue_pushes: 4,
            queue_pops: 4,
            scheduled_quanta: 24,
            per_task: vec![crate::probe::TaskSpanDelta {
                task: TaskId(0),
                releases: 4,
                schedules: 24,
            }],
            ..SpanDigest::default()
        };
        rec.on_span_armed(5001);
        rec.on_busy_span_jump(5001, 5013, 8000, &digest);
        rec.on_miss(TaskId(0), 7, 5013, 5013);

        let json = rec.chrome_trace();
        let Some(Json::Array(events)) = json.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").and_then(as_str) == Some("span"))
            .collect();
        assert_eq!(spans.len(), 2, "exactly one slice per span");
        let quiet = spans[0];
        assert_eq!(quiet.get("pid").and_then(Json::as_int), Some(3));
        assert_eq!(quiet.get("dur").and_then(Json::as_int), Some(5000));
        let jump = spans[1];
        assert_eq!(jump.get("ts").and_then(Json::as_int), Some(5013));
        assert_eq!(jump.get("dur").and_then(Json::as_int), Some(96_000));
        let args = jump.get("args").expect("args");
        assert_eq!(args.get("periods").and_then(Json::as_int), Some(8000));
        assert_eq!(
            args.get("schedules_per_period").and_then(Json::as_int),
            Some(24)
        );
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(as_str) == Some("miss")),
            "miss instant present"
        );
        // The recorded stream is 4 events, not 5000 + 96000.
        assert_eq!(rec.events().len(), 4);
    }
}
