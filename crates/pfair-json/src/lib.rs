//! # pfair-json
//!
//! A small, dependency-free JSON codec used to export simulation
//! results ([`pfair-sched`]'s `SimResult` tree) for downstream tooling.
//!
//! It exists instead of `serde_json` for two reasons. First, this build
//! environment cannot fetch crates.io dependencies (see
//! `stubs/README.md`). Second — and the reason it stays — the
//! workspace's values are **exact rationals over `i128`**: a general
//! JSON library routes numbers through `f64`, which silently rounds
//! numerators and denominators beyond 2⁵³ and would violate the
//! repository's exact-arithmetic invariant at the serialization
//! boundary. This codec represents every number as an `i128` integer,
//! end to end; non-integer numbers are a *parse error* by design, and
//! rationals serialize structurally as `{"num": …, "den": …}`.
//!
//! ```
//! use pfair_json::{Json, ToJson, FromJson};
//!
//! let v = Json::parse(r#"{"num": 170141183460469231731687303715884105727, "den": 1}"#).unwrap();
//! assert_eq!(v.get("num").and_then(Json::as_int), Some(i128::MAX));
//! let round = i128::from_json(&Json::Int(42)).unwrap();
//! assert_eq!(round, 42);
//! assert_eq!(true.to_json().to_string(), "true");
//! ```

use std::fmt;

/// A JSON value with exact integer numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Integers only: this codec has no floating-point path.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, including position for parse errors.
    pub message: String,
}

impl JsonError {
    /// Constructs an error from any displayable message.
    pub fn new(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

/// Serialization into [`Json`] values.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Validated deserialization from [`Json`] values.
///
/// Implementations re-validate domain invariants (`Rational`
/// denominators, `Weight` ranges), so untrusted input cannot construct
/// invalid values.
pub trait FromJson: Sized {
    /// Converts, reporting a descriptive [`JsonError`] on mismatch.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Extracts and converts a required object field.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        let v = self
            .get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))?;
        T::from_json(v).map_err(|e| JsonError::new(format!("field `{key}`: {}", e.message)))
    }

    /// Parses a JSON document (UTF-8 text, integers only).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                // i128 display is pure digits; no float formatting anywhere.
                out.push_str(&n.to_string());
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1); // audit: allow(panic-reach, write_seq calls back with i < items.len() by construction)
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i]; // audit: allow(panic-reach, write_seq calls back with i < fields.len() by construction)
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

/// Compact serialization comes from `Display`: `value.to_string()`.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(width * (depth + 1)) {
                out.push(' ');
            }
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        // audit: allow(panic-reach, pos <= bytes.len() is the scanner invariant, slices cannot overrun)
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs are rejected rather than
                            // combined; the workspace never emits them.
                            let c =
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Continue a UTF-8 sequence byte-by-byte: the input
                    // is a &str, so sequences are valid by construction.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|nb| nb & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos]) // audit: allow(panic-reach, pos <= bytes.len() is the scanner invariant, slices cannot overrun)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp: u32 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            self.pos += 1;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            cp = cp * 16 + digit;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer number: this codec is exact-integer by design"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]) // audit: allow(panic-reach, pos <= bytes.len() is the scanner invariant, slices cannot overrun)
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| self.err("integer out of i128 range"))
    }
}

macro_rules! impl_json_ints {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i128::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let n = value
                    .as_int()
                    .ok_or_else(|| JsonError::new("expected an integer"))?;
                <$t>::try_from(n).map_err(|_| {
                    JsonError::new(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_json_ints!(i8, i16, i32, i64, u8, u16, u32, u64);

impl ToJson for i128 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl FromJson for i128 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_int()
            .ok_or_else(|| JsonError::new("expected an integer"))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i128)
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let n = value
            .as_int()
            .ok_or_else(|| JsonError::new("expected an integer"))?;
        usize::try_from(n).map_err(|_| JsonError::new("integer out of usize range"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::new("expected a boolean")),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(JsonError::new("expected a string")),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::new("expected an array")),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Array(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            _ => Err(JsonError::new("expected a two-element array")),
        }
    }
}

/// Builds an object value from `(key, value)` pairs.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".to_string())
        );
    }

    #[test]
    fn i128_extremes_roundtrip_exactly() {
        for n in [i128::MAX, i128::MIN, 0, -1, 2i128.pow(64)] {
            let text = Json::Int(n).to_string();
            assert_eq!(Json::parse(&text).unwrap(), Json::Int(n));
        }
    }

    #[test]
    fn floats_are_rejected_by_design() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e9").is_err());
    }

    #[test]
    fn nested_roundtrip_compact_and_pretty() {
        let v = obj([
            ("xs", Json::Array(vec![Json::Int(1), Json::Null])),
            ("name", Json::Str("T0".into())),
            ("inner", obj([("b", Json::Bool(false))])),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = Json::parse("[1,]").unwrap_err();
        assert!(e.message.contains("at byte"));
        assert!(Json::parse("{\"a\":1").is_err());
        assert!(Json::parse("[] []").is_err());
    }

    #[test]
    fn typed_conversions_validate() {
        assert_eq!(u32::from_json(&Json::Int(7)).unwrap(), 7);
        assert!(u32::from_json(&Json::Int(-1)).is_err());
        assert!(u32::from_json(&Json::Bool(true)).is_err());
        assert_eq!(Option::<u64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(
            Vec::<i64>::from_json(&Json::parse("[1,2,3]").unwrap()).unwrap(),
            vec![1, 2, 3]
        );
        let pair = <(i64, bool)>::from_json(&Json::parse("[5,true]").unwrap()).unwrap();
        assert_eq!(pair, (5, true));
    }

    #[test]
    fn field_lookup_reports_missing_keys() {
        let v = obj([("a", Json::Int(1))]);
        assert_eq!(v.field::<i64>("a").unwrap(), 1);
        let e = v.field::<i64>("b").unwrap_err();
        assert!(e.message.contains("missing field `b`"));
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let v = Json::Str("π ≈ 3, émue, 🦀".to_string());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
