//! Shared fixtures for the Criterion benchmarks: canned workloads of
//! parametric size so every bench target measures the same systems.

use pfair_sched::prelude::*;

/// A saturated `m`-processor system of `n` tasks of equal weight
/// `m/(2n)`-ish (clamped to ≤ 1/2), all joining at time 0.
pub fn uniform_workload(n: u32, m: u32) -> Workload {
    let mut w = Workload::new();
    // weight = m / (2n), kept ≤ 1/2 and ≥ 1/(4n).
    let num = i128::from(m);
    let den = i128::from(2 * n.max(m));
    for i in 0..n {
        w.join(i, 0, num, den);
    }
    w
}

/// The same system plus one reweighting event per task at `at`.
pub fn reweight_burst(n: u32, m: u32, at: i64) -> Workload {
    let mut w = uniform_workload(n, m);
    let num = i128::from(m);
    let den = i128::from(4 * n.max(m));
    for i in 0..n {
        w.reweight(i, at, num, den);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_workload_is_feasible() {
        let w = uniform_workload(16, 4);
        let r = simulate(SimConfig::oi(4, 64), &w);
        assert!(r.is_miss_free());
    }

    #[test]
    fn reweight_burst_runs_under_both_schemes() {
        let w = reweight_burst(8, 2, 10);
        assert!(simulate(SimConfig::oi(2, 64), &w).is_miss_free());
        let lj = simulate(SimConfig::leave_join(2, 64), &w);
        assert!(lj.is_miss_free());
    }
}
