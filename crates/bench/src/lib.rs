//! Shared fixtures for the Criterion benchmarks: canned workloads of
//! parametric size so every bench target measures the same systems —
//! plus the benchmark-trajectory emitter ([`emit_summary`]) that every
//! bench target calls from `main` to fold its numbers into
//! [`TRAJECTORY_FILE`] at the repository root.

use pfair_sched::prelude::*;

/// A saturated `m`-processor system of `n` tasks of equal weight
/// `m/(2n)`-ish (clamped to ≤ 1/2), all joining at time 0.
pub fn uniform_workload(n: u32, m: u32) -> Workload {
    let mut w = Workload::new();
    // weight = m / (2n), kept ≤ 1/2 and ≥ 1/(4n).
    let num = i128::from(m);
    let den = i128::from(2 * n.max(m));
    for i in 0..n {
        w.join(i, 0, num, den);
    }
    w
}

/// The same system plus one reweighting event per task at `at`.
pub fn reweight_burst(n: u32, m: u32, at: i64) -> Workload {
    let mut w = uniform_workload(n, m);
    let num = i128::from(m);
    let den = i128::from(4 * n.max(m));
    for i in 0..n {
        w.reweight(i, at, num, den);
    }
    w
}

/// File the benchmark trajectory is written to, at the repo root.
pub const TRAJECTORY_FILE: &str = "BENCH_pr10.json";

/// Serializes one drained benchmark result as a trajectory entry.
fn result_entry(r: &criterion::BenchResult) -> pfair_json::Json {
    // Iterations per second from the median; the codec is integer-only
    // by design, so sub-1/s throughput floors to 0 rather than
    // round-tripping through a float.
    let median = r.median_ns.max(1);
    let throughput = 1_000_000_000u128 / median;
    pfair_json::obj([
        ("median_ns", int_json(median)),
        ("mean_ns", int_json(r.mean_ns)),
        ("iters", pfair_json::Json::Int(i128::from(r.iters))),
        ("throughput_per_sec", int_json(throughput)),
    ])
}

fn int_json(v: u128) -> pfair_json::Json {
    pfair_json::Json::Int(i128::try_from(v).unwrap_or(i128::MAX))
}

/// Drains the criterion registry and merges the results into
/// [`TRAJECTORY_FILE`] at the repo root: one object keyed by benchmark
/// name, entries from earlier bench targets in the same `cargo bench`
/// run preserved, same-name entries overwritten.
///
/// Every bench target's `main` calls this after its groups have run;
/// set `BENCH_JSON_PATH` to redirect the output (used by tests).
pub fn emit_summary() {
    let results = criterion::take_results();
    if results.is_empty() {
        return;
    }
    let path = std::env::var_os("BENCH_JSON_PATH").map_or_else(
        || {
            // CARGO_MANIFEST_DIR is crates/bench; the trajectory lives
            // at the workspace root two levels up.
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(TRAJECTORY_FILE)
        },
        std::path::PathBuf::from,
    );
    let mut entries: Vec<(String, pfair_json::Json)> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| pfair_json::Json::parse(&text).ok())
        .and_then(|json| match json {
            pfair_json::Json::Object(fields) => Some(fields),
            _ => None,
        })
        .unwrap_or_default();
    for r in &results {
        let entry = result_entry(r);
        match entries.iter_mut().find(|(name, _)| *name == r.name) {
            Some((_, slot)) => *slot = entry,
            None => entries.push((r.name.clone(), entry)),
        }
    }
    let doc = pfair_json::Json::Object(entries);
    if let Err(e) = std::fs::write(&path, doc.to_string_pretty() + "\n") {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!(
            "wrote {} benchmark entr{} to {}",
            results.len(),
            if results.len() == 1 { "y" } else { "ies" },
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_workload_is_feasible() {
        let w = uniform_workload(16, 4);
        let r = simulate(SimConfig::oi(4, 64), &w);
        assert!(r.is_miss_free());
    }

    #[test]
    fn reweight_burst_runs_under_both_schemes() {
        let w = reweight_burst(8, 2, 10);
        assert!(simulate(SimConfig::oi(2, 64), &w).is_miss_free());
        let lj = simulate(SimConfig::leave_join(2, 64), &w);
        assert!(lj.is_miss_free());
    }

    #[test]
    fn emit_summary_merges_with_an_existing_trajectory() {
        let path =
            std::env::temp_dir().join(format!("bench_pr3_merge_{}.json", std::process::id()));
        std::fs::write(
            &path,
            r#"{"earlier/bench": {"median_ns": 5, "mean_ns": 6, "iters": 7, "throughput_per_sec": 200000000}}"#,
        )
        .expect("seeding the trajectory file");
        std::env::set_var("BENCH_JSON_PATH", &path);
        criterion::Criterion::default()
            .bench_function("merge_probe", |b| b.iter(|| criterion::black_box(1 + 1)));
        emit_summary();
        std::env::remove_var("BENCH_JSON_PATH");

        let text = std::fs::read_to_string(&path).expect("trajectory written");
        let doc = pfair_json::Json::parse(&text).expect("trajectory is valid JSON");
        // The pre-existing entry survives and the new one is appended.
        assert!(doc.get("earlier/bench").is_some(), "kept prior entry");
        let probe = doc.get("merge_probe").expect("new entry present");
        assert!(probe.get("median_ns").and_then(pfair_json::Json::as_int) > Some(0));
        assert!(probe.get("throughput_per_sec").is_some());
        let _ = std::fs::remove_file(&path);
    }
}

#[cfg(test)]
mod jump_probe {
    use super::*;
    use pfair_sched::engine::Engine;

    #[test]
    fn saturated_bench_workload_engages_busy_span() {
        let w = uniform_workload(8, 4);
        let mut e = Engine::new(SimConfig::oi(4, 100_000), &w);
        e.run();
        assert!(e.busy_span_jumps() > 0, "jumps = {}", e.busy_span_jumps());
    }
}
