//! Tickless batching vs per-slot stepping, end to end.
//!
//! The tickless driver (PR 5) advances quiet spans in closed form and
//! routes release-only slots through a reduced pipeline; busy-span
//! batching (PR 8) extends the same idea to *saturated* spans by
//! verifying one period against the per-slot oracle and enacting the
//! remaining whole periods arithmetically. Each triple below runs the
//! same workload to the same horizon three times — `per_slot_*` with
//! `SimConfig::per_slot()` (the oracle), `tickless_*` with quiet-span
//! batching only (`without_busy_span`, the PR 5 baseline), and
//! `busy_span_*` with the default full config — over two regimes:
//!
//! * `underloaded`: eight weight-≈1/100 tasks on four processors.
//!   Windows are ~100 slots wide, so almost every slot is quiet; the
//!   quiet-span path dominates and `busy_span_*` must not regress it.
//! * `saturated`: eight half-weight tasks on four processors. Every
//!   slot schedules work, quiet-span batching never engages, and
//!   busy-span batching should carry the whole tail in closed form
//!   (the ISSUE target is ≥5× over the tickless baseline at 100k).
//!
//! Entries land in the repo-root trajectory as
//! `engine/{per_slot,tickless,busy_span}_{1k,10k,100k}/{underloaded,saturated}`;
//! CI greps for the pair names.

use bench::uniform_workload;
use criterion::{criterion_group, BenchmarkId, Criterion};
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::event::Workload;
use std::hint::black_box;

/// Eight sparse tasks on four CPUs with coprime-ish periods so their
/// releases interleave instead of clustering on one slot.
fn underloaded_workload() -> Workload {
    let mut w = Workload::new();
    for i in 0..8u32 {
        w.join(i, i64::from(i), 1, 97 + i128::from(i) * 3);
    }
    w
}

fn bench_engine_tickless(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let processors = 4u32;
    let scenarios: [(&str, Workload); 2] = [
        ("underloaded", underloaded_workload()),
        ("saturated", uniform_workload(2 * processors, processors)),
    ];
    for &(label, horizon) in &[("1k", 1_000i64), ("10k", 10_000), ("100k", 100_000)] {
        for (scenario, w) in &scenarios {
            group.bench_with_input(
                BenchmarkId::new(format!("per_slot_{label}"), scenario),
                &horizon,
                |b, &horizon| {
                    b.iter(|| {
                        black_box(simulate(SimConfig::oi(processors, horizon).per_slot(), w))
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("tickless_{label}"), scenario),
                &horizon,
                |b, &horizon| {
                    b.iter(|| {
                        black_box(simulate(
                            SimConfig::oi(processors, horizon).without_busy_span(),
                            w,
                        ))
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("busy_span_{label}"), scenario),
                &horizon,
                |b, &horizon| b.iter(|| black_box(simulate(SimConfig::oi(processors, horizon), w))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_tickless);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
