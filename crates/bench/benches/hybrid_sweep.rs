//! The efficiency axis of the hybrid ladder, measured as wall time.
//!
//! The `tradeoff` experiment binary reports accuracy (drift, % of
//! ideal) and abstract overhead (heap operations) per scheme; this
//! bench pins down the *concrete* cost of the same ladder — how much
//! wall time each scheme spends scheduling an identical bursty
//! workload — so the frontier can be drawn with measured time on the
//! x-axis.

use criterion::{criterion_group, BenchmarkId, Criterion};
use pfair_core::rational::rat;
use pfair_sched::engine::{simulate, SimConfig};
use pfair_sched::event::Workload;
use pfair_sched::reweight::{HybridPolicy, Scheme};
use std::hint::black_box;

/// A bursty 16-task workload on 4 CPUs with order-of-magnitude swings —
/// the regime where the schemes differ most.
fn bursty_workload(horizon: i64) -> Workload {
    let mut w = Workload::new();
    for i in 0..16u32 {
        w.join(i, 0, 1, 40);
        let phase = 53 * (i64::from(i) + 1);
        let mut t = phase;
        while t + 150 < horizon {
            w.reweight(i, t, 1, 5);
            w.reweight(i, t + 40, 1, 12);
            w.reweight(i, t + 80, 1, 40);
            t += 250;
        }
    }
    w
}

fn bench_hybrid_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_ladder_1000_slots");
    group.sample_size(20);
    let horizon = 1_000;
    let workload = bursty_workload(horizon);
    let ladder: Vec<(&str, Scheme)> = vec![
        ("lj", Scheme::LeaveJoin),
        ("every4th", Scheme::Hybrid(HybridPolicy::EveryNth(4))),
        ("every2nd", Scheme::Hybrid(HybridPolicy::EveryNth(2))),
        (
            "threshold50",
            Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(rat(1, 2))),
        ),
        (
            "budget2per100",
            Scheme::Hybrid(HybridPolicy::OiBudget {
                budget: 2,
                window: 100,
            }),
        ),
        ("oi", Scheme::Oi),
    ];
    for (label, scheme) in ladder {
        group.bench_with_input(BenchmarkId::new(label, "bursty16"), &scheme, |b, scheme| {
            b.iter(|| {
                let cfg = SimConfig::oi(4, horizon).with_scheme(scheme.clone());
                let r = simulate(cfg, &workload);
                assert!(r.is_miss_free());
                black_box(r.counters.heap_ops())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hybrid_ladder);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
