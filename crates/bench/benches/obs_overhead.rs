//! Probe overhead: the zero-cost-when-disabled guard for `pfair-obs`.
//!
//! The engine is generic over a [`Probe`](pfair_sched::prelude::Probe)
//! with static dispatch, so a [`NoopProbe`] run must compile to the
//! same machine code as the probe-free baseline (`simulate`, which *is*
//! the `NoopProbe` instantiation of the generic engine). This bench
//! pins that claim in the trajectory file at 10k- and 100k-slot
//! horizons over a sustained sawtooth reweighting workload, and records
//! what a live [`MetricsProbe`] actually costs next to it.
//!
//! The three variants are timed **interleaved**: every round times one
//! run of each, rotating the starting variant, so slow machine-load
//! drift hits all series equally instead of biasing whichever window
//! ran later. Reviewing a trajectory bump: `baseline` and `noop_probe`
//! must stay within noise (≤ 2%) of each other; only `metrics_probe`
//! may drift with feature work.
//!
//! A second family (`busy_*`) times a *saturated* workload where the
//! busy-span batcher carries the horizon: span-aware probes must stay
//! within a small factor of the no-op batched run (`busy_metrics` ≤ 3×
//! `busy_noop` is the pinned acceptance bound, also asserted by
//! `span_observability.rs`).

use criterion::{criterion_group, BenchResult, Criterion};
use pfair_sched::engine::{simulate, simulate_with, SimConfig};
use pfair_sched::prelude::{MetricsProbe, TraceRecorder};
use pfair_sched::workloads::{sawtooth, uniform};
use std::hint::black_box;
use std::time::Instant;

const TASKS: u32 = 12;
const CPUS: u32 = 4;

/// Times one round-robin pass per round over the three variants and
/// registers a `BenchResult` per variant, medians taken across rounds.
fn paired(horizon: i64, rounds: usize) {
    /// One timed series: label, the run under test, collected samples.
    type Variant<'a> = (&'a str, Box<dyn FnMut() + 'a>, Vec<u128>);
    let w = sawtooth(TASKS, (1, 24), (1, 6), 100, horizon);
    let mut variants: Vec<Variant> = vec![
        (
            "baseline",
            Box::new(|| {
                black_box(simulate(SimConfig::oi(CPUS, horizon), &w).counters);
            }),
            Vec::new(),
        ),
        (
            "noop_probe",
            Box::new(|| {
                black_box(
                    simulate_with(
                        SimConfig::oi(CPUS, horizon),
                        &w,
                        pfair_sched::prelude::NoopProbe,
                    )
                    .0
                    .counters,
                );
            }),
            Vec::new(),
        ),
        (
            "metrics_probe",
            Box::new(|| {
                let (result, probe) =
                    simulate_with(SimConfig::oi(CPUS, horizon), &w, MetricsProbe::new());
                black_box((result.counters, probe.registry().counter("slots")));
            }),
            Vec::new(),
        ),
    ];
    // One untimed warm-up pass per variant, then the interleaved rounds;
    // the starting variant rotates so drift has no preferred victim.
    for (_, run, _) in &mut variants {
        run();
    }
    let n = variants.len();
    for round in 0..rounds {
        for k in 0..n {
            let (_, run, samples) = &mut variants[(round + k) % n];
            let t0 = Instant::now();
            run();
            samples.push(t0.elapsed().as_nanos());
        }
    }
    for (name, _, mut samples) in variants {
        samples.sort_unstable();
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<u128>() / samples.len() as u128;
        let label = format!("obs_overhead/{name}/{horizon}slots");
        println!("bench: {label:<50} {mean_ns:>12} ns/iter (median {median_ns}, {rounds} iters)");
        criterion::record_result(BenchResult {
            name: label,
            median_ns,
            mean_ns,
            iters: rounds as u64,
        });
    }
}

/// Saturated busy-span pairs: 12 tasks × 1/3 on 4 CPUs is exactly
/// saturated with period 3, so once armed the batcher carries the whole
/// horizon in closed-form jumps. Span-aware probes must ride the jumps
/// (exact digest scaling) instead of forcing the engine per-slot: the
/// `busy_metrics` and `busy_trace` series are the cost of observation
/// *at batched speed*, and the acceptance bound pins `busy_metrics`
/// within 3× of `busy_noop`.
fn paired_busy(horizon: i64, rounds: usize) {
    type Variant<'a> = (&'a str, Box<dyn FnMut() + 'a>, Vec<u128>);
    let w = uniform(TASKS, 1, 3);
    let mut variants: Vec<Variant> = vec![
        (
            "busy_noop",
            Box::new(|| {
                black_box(simulate(SimConfig::oi(CPUS, horizon), &w).counters);
            }),
            Vec::new(),
        ),
        (
            "busy_metrics",
            Box::new(|| {
                let (result, probe) =
                    simulate_with(SimConfig::oi(CPUS, horizon), &w, MetricsProbe::new());
                black_box((result.counters, probe.registry().counter("slots")));
            }),
            Vec::new(),
        ),
        (
            "busy_trace",
            Box::new(|| {
                let (result, rec) =
                    simulate_with(SimConfig::oi(CPUS, horizon), &w, TraceRecorder::new());
                black_box((result.counters, rec.events().len()));
            }),
            Vec::new(),
        ),
    ];
    for (_, run, _) in &mut variants {
        run();
    }
    let n = variants.len();
    for round in 0..rounds {
        for k in 0..n {
            let (_, run, samples) = &mut variants[(round + k) % n];
            let t0 = Instant::now();
            run();
            samples.push(t0.elapsed().as_nanos());
        }
    }
    for (name, _, mut samples) in variants {
        samples.sort_unstable();
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<u128>() / samples.len() as u128;
        let label = format!("obs_overhead/{name}/{horizon}slots");
        println!("bench: {label:<50} {mean_ns:>12} ns/iter (median {median_ns}, {rounds} iters)");
        criterion::record_result(BenchResult {
            name: label,
            median_ns,
            mean_ns,
            iters: rounds as u64,
        });
    }
}

fn bench_obs_overhead(_c: &mut Criterion) {
    // --quick keeps CI's smoke run short; the full run takes enough
    // interleaved samples for the medians to resolve a 2% difference.
    let rounds = if criterion::quick_mode() { 3 } else { 21 };
    for &horizon in &[10_000i64, 100_000] {
        paired(horizon, rounds);
        paired_busy(horizon, rounds);
    }
}

criterion_group!(benches, bench_obs_overhead);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
