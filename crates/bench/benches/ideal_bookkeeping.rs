//! Cost of the exact-arithmetic ideal-schedule bookkeeping.
//!
//! PD²-OI's extra accuracy rests on tracking `I_SW` completions online
//! with exact rationals. This bench isolates that machinery and pits the
//! two bookkeeping strategies against each other at 1k/10k/100k-slot
//! horizons:
//!
//! * **per_slot** — the oracle: one `advance` call per slot, cost
//!   `O(horizon)` regardless of how often anything changes;
//! * **advance_to** — the event-driven path: closed-form interval jumps
//!   at the same observation points the engine uses, cost `O(events)`.
//!
//! The pairs share a name scheme (`<group>/per_slot_<h>/…` vs
//! `<group>/advance_to_<h>/…`) so the trajectory file exposes the
//! speedup directly. The raw rational-op benches at the bottom cover the
//! primitives both paths lean on, including the same-denominator add and
//! `mul_int` fast paths the interval code introduced.

use criterion::{criterion_group, BenchmarkId, Criterion};
use pfair_core::ideal::{IswTracker, PsTracker};
use pfair_core::rational::{rat, Accumulator, Rational};
use pfair_core::weight::Weight;
use pfair_core::window::{b_bit, periodic_window};
use std::hint::black_box;

/// The weights the tracker pairs sweep: a coarse one (frequent
/// releases) and the 25/2520 stress weight (huge denominators, sparse
/// releases — the event-driven best case).
const WEIGHTS: [(i128, i128); 2] = [(3, 20), (25, 2520)];

/// Horizons for the per_slot/advance_to pairs.
const HORIZONS: [i64; 3] = [1_000, 10_000, 100_000];

/// Slot-by-slot oracle: add each subtask at its release, advance every
/// slot.
fn isw_per_slot(w: Weight, horizon: i64) -> Rational {
    let mut tr = IswTracker::new(w.value(), 0);
    let mut next_sub = 1u64;
    let mut next_release = 0i64;
    for t in 0..horizon {
        while next_release == t {
            let win = periodic_window(w, next_sub, 0);
            tr.add_subtask(
                next_sub,
                win.release,
                next_sub == 1,
                next_sub > 1 && b_bit(w, next_sub - 1),
            );
            next_sub += 1;
            next_release = periodic_window(w, next_sub, 0).release;
        }
        black_box(tr.advance(t));
    }
    tr.isw_total()
}

/// Event-driven path: register the era's subtasks (releases may lie in
/// the future, as in `is_ideal_table`), then one closed-form jump.
fn isw_advance_to(w: Weight, horizon: i64) -> Rational {
    let mut tr = IswTracker::new(w.value(), 0);
    let mut next_sub = 1u64;
    loop {
        let win = periodic_window(w, next_sub, 0);
        if win.release >= horizon {
            break;
        }
        tr.add_subtask(
            next_sub,
            win.release,
            next_sub == 1,
            next_sub > 1 && b_bit(w, next_sub - 1),
        );
        next_sub += 1;
    }
    black_box(tr.advance_to(horizon));
    tr.isw_total()
}

fn bench_isw_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("isw_tracker");
    for &(num, den) in &WEIGHTS {
        let w = Weight::new(rat(num, den));
        for &h in &HORIZONS {
            group.bench_with_input(
                BenchmarkId::new(format!("per_slot_{h}"), format!("w{num}_{den}")),
                &h,
                |b, &h| b.iter(|| black_box(isw_per_slot(w, h))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("advance_to_{h}"), format!("w{num}_{den}")),
                &h,
                |b, &h| b.iter(|| black_box(isw_advance_to(w, h))),
            );
        }
        // Legacy name kept for trajectory continuity with earlier PRs.
        group.bench_with_input(
            BenchmarkId::new("advance_1000_slots", format!("w{num}_{den}")),
            &(),
            |b, ()| b.iter(|| black_box(isw_per_slot(w, 1000))),
        );
    }
    group.finish();
}

/// Per-slot I_PS oracle with a weight change every 17 slots.
fn ps_per_slot(horizon: i64) -> Rational {
    let mut ps = PsTracker::new(rat(841, 2520), 0);
    for t in 0..horizon {
        if t % 17 == 0 {
            ps.set_wt(rat(600 + i128::from(t % 200), 2520));
        }
        black_box(ps.advance(t));
    }
    ps.total()
}

/// The same schedule advanced with one jump per weight change.
fn ps_advance_to(horizon: i64) -> Rational {
    let mut ps = PsTracker::new(rat(841, 2520), 0);
    let mut t = 0i64;
    while t < horizon {
        ps.set_wt(rat(600 + i128::from(t % 200), 2520));
        let next = (t + 17).min(horizon);
        black_box(ps.advance_to(next));
        t = next;
    }
    ps.total()
}

fn bench_ps_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_tracker");
    for &h in &HORIZONS {
        group.bench_with_input(
            BenchmarkId::new(format!("per_slot_{h}"), "w_varying"),
            &h,
            |b, &h| b.iter(|| black_box(ps_per_slot(h))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("advance_to_{h}"), "w_varying"),
            &h,
            |b, &h| b.iter(|| black_box(ps_advance_to(h))),
        );
    }
    group.finish();
    // Legacy name kept for trajectory continuity with earlier PRs.
    c.bench_function("ps_tracker_advance_1000_slots", |b| {
        b.iter(|| black_box(ps_per_slot(1000)));
    });
}

fn bench_rational_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("rational");
    let a = rat(841, 2520);
    let d = rat(3, 19);
    let same = rat(13, 2520);
    group.bench_function("add", |b| b.iter(|| black_box(black_box(a) + black_box(d))));
    group.bench_function("add_same_den", |b| {
        b.iter(|| black_box(black_box(a) + black_box(same)));
    });
    group.bench_function("mul", |b| b.iter(|| black_box(black_box(a) * black_box(d))));
    group.bench_function("mul_int", |b| {
        b.iter(|| black_box(black_box(a).mul_int(black_box(504))));
    });
    group.bench_function("cmp", |b| b.iter(|| black_box(black_box(a) < black_box(d))));
    group.bench_function("div_ceil_int", |b| {
        b.iter(|| black_box(black_box(d).div_ceil_int(black_box(7))));
    });
    group.bench_function("accumulate_1000", |b| {
        b.iter(|| {
            let mut acc = Rational::ZERO;
            for _ in 0..1000 {
                acc += black_box(a);
            }
            black_box(acc)
        });
    });
    group.bench_function("accumulator_1000", |b| {
        b.iter(|| {
            let mut acc = Accumulator::new();
            for _ in 0..1000 {
                acc.push(black_box(a));
            }
            black_box(acc.finish())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_isw_pairs, bench_ps_pairs, bench_rational_ops);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
