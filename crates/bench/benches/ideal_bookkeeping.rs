//! Cost of the exact-arithmetic ideal-schedule bookkeeping.
//!
//! PD²-OI's extra accuracy rests on tracking `I_SW` completions online
//! with exact rationals. This bench isolates that machinery: the
//! per-slot cost of an `IswTracker`/`PsTracker` advance, and the raw
//! rational operations underneath, to show the bookkeeping stays far
//! below the slot budget (the paper's 1 ms quantum).

use criterion::{criterion_group, BenchmarkId, Criterion};
use pfair_core::ideal::{IswTracker, PsTracker};
use pfair_core::rational::{rat, Rational};
use pfair_core::weight::Weight;
use pfair_core::window::{b_bit, periodic_window};
use std::hint::black_box;

fn bench_isw_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("isw_tracker");
    for &(num, den) in &[(1i128, 3i128), (3, 20), (25, 2520)] {
        group.bench_with_input(
            BenchmarkId::new("advance_1000_slots", format!("w{num}_{den}")),
            &(num, den),
            |b, &(num, den)| {
                let w = Weight::new(rat(num, den));
                b.iter(|| {
                    let mut tr = IswTracker::new(w.value(), 0);
                    let mut next_sub = 1u64;
                    let mut next_release = 0i64;
                    for t in 0..1000i64 {
                        while next_release == t {
                            let win = periodic_window(w, next_sub, 0);
                            tr.add_subtask(
                                next_sub,
                                win.release,
                                next_sub == 1,
                                next_sub > 1 && b_bit(w, next_sub - 1),
                            );
                            next_sub += 1;
                            next_release = periodic_window(w, next_sub, 0).release;
                        }
                        black_box(tr.advance(t));
                    }
                    black_box(tr.isw_total())
                });
            },
        );
    }
    group.finish();
}

fn bench_ps_advance(c: &mut Criterion) {
    c.bench_function("ps_tracker_advance_1000_slots", |b| {
        b.iter(|| {
            let mut ps = PsTracker::new(rat(841, 2520), 0);
            for t in 0..1000i64 {
                if t % 17 == 0 {
                    ps.set_wt(rat(600 + i128::from(t % 200), 2520));
                }
                black_box(ps.advance(t));
            }
            black_box(ps.total())
        });
    });
}

fn bench_rational_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("rational");
    let a = rat(841, 2520);
    let d = rat(3, 19);
    group.bench_function("add", |b| b.iter(|| black_box(black_box(a) + black_box(d))));
    group.bench_function("mul", |b| b.iter(|| black_box(black_box(a) * black_box(d))));
    group.bench_function("cmp", |b| b.iter(|| black_box(black_box(a) < black_box(d))));
    group.bench_function("div_ceil_int", |b| {
        b.iter(|| black_box(black_box(d).div_ceil_int(black_box(7))));
    });
    group.bench_function("accumulate_1000", |b| {
        b.iter(|| {
            let mut acc = Rational::ZERO;
            for _ in 0..1000 {
                acc += black_box(a);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_isw_advance,
    bench_ps_advance,
    bench_rational_ops
);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
