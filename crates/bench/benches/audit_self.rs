//! Audit self-benchmark: what the v2 analyzer costs on this very
//! workspace.
//!
//! The audit is a CI gate that reruns on every push, so its wall time
//! is part of the developer loop. Two series pin where that time
//! goes: `parse` is the front half alone (walk + lex + shape every
//! in-tree `.rs` file), `full` is the entire pipeline — parsing, the
//! call-graph panic-reachability BFS, the determinism and float-taint
//! walks, interval analysis of the `prove(overflow-bounds)` set, and
//! allow-discharge. A trajectory bump in `full` that `parse` does not
//! share means a pass regressed, not the parser.

use criterion::{criterion_group, Criterion};
use pfair_audit::config::Config;
use pfair_audit::{analyze_root, audit_report};
use std::hint::black_box;
use std::path::{Path, PathBuf};

/// Workspace root, two levels above `crates/bench`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load_config(root: &Path) -> Config {
    let src = std::fs::read_to_string(root.join("audit.toml")).expect("audit.toml at repo root");
    Config::parse(&src).expect("audit.toml parses")
}

fn bench_audit_self(c: &mut Criterion) {
    let root = workspace_root();
    let cfg = load_config(&root);

    c.bench_function("audit_self/parse", |b| {
        b.iter(|| {
            let ws = analyze_root(&root, &cfg).expect("workspace readable");
            black_box(ws.files.len())
        });
    });

    c.bench_function("audit_self/full", |b| {
        b.iter(|| {
            let report = audit_report(&root, &cfg).expect("workspace readable");
            assert!(
                report.active().is_empty(),
                "the workspace must stay audit-clean while being benched"
            );
            black_box(report.entries.len())
        });
    });
}

criterion_group!(benches, bench_audit_self);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
