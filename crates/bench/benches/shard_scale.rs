//! Scale-out benches for the PR-10 sharding stack.
//!
//! Three families, all landing in the repo-root trajectory file:
//!
//! * `engine/shard_{1,2,4,8}x/{100k_tasks,1m_tasks}` — a deterministic
//!   synthetic population partitioned by [`ShardSet`] across `S`
//!   shards and run to a fixed horizon. On a single core the total is
//!   roughly flat in `S` (same quanta, small supervisor overhead); the
//!   scaling claim lives in the per-shard split the sharding invariant
//!   guarantees (max shard share ≈ total/S — see the `sharding`
//!   experiment), which parallel hardware turns into throughput.
//! * `engine/shard_population/1m_tasks_10k_slots` — the acceptance
//!   run: one full 10⁶-task, 10⁴-slot horizon through an 8-shard
//!   [`ShardSet`], timed once and recorded via `record_result` (an
//!   8-iteration criterion loop over a multi-second run would buy
//!   nothing but CI minutes).
//! * `slab/{aos,soa}_step/100k` — the storage refactor's microbench:
//!   one whole-set hot scan (present? next release due?) over 10⁵
//!   tasks, laid out as ~300-byte array-of-structs rows (the engine's
//!   pre-PR-10 layout) vs the slab's bitmap-plus-column
//!   structure-of-arrays. The pair is the evidence that the per-slot
//!   path became cache-linear.

use criterion::{criterion_group, BenchResult, BenchmarkId, Criterion};
use pfair_sched::shard::{ShardSet, ShardSpec};
use pfair_sched::workloads::synthetic_population;
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 0x5eed;

/// Per-shard processor budget covering the population's worst-case
/// utilization (`n/512`) split across `shards`, plus headroom.
fn processors_for(tasks: u32, shards: usize) -> u32 {
    let worst = tasks.div_ceil(512);
    worst.div_ceil(u32::try_from(shards).unwrap_or(1)) + 1
}

fn run_sharded(tasks: u32, shards: usize, horizon: i64) -> u64 {
    let w = synthetic_population(tasks, SEED);
    let spec = ShardSpec::new(shards, processors_for(tasks, shards), horizon).with_segment(512);
    let mut set = ShardSet::new(spec, &w);
    set.run();
    let report = set.finish();
    assert_eq!(report.misses(), 0, "population must stay feasible");
    report.scheduled_quanta()
}

fn bench_shard_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &(tasks, label, horizon) in &[
        (100_000u32, "100k_tasks", 4_096i64),
        (1_000_000, "1m_tasks", 512),
    ] {
        for shards in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("shard_{shards}x"), label),
                &horizon,
                |b, &horizon| b.iter(|| black_box(run_sharded(tasks, shards, horizon))),
            );
        }
    }
    group.finish();
}

/// The acceptance run, timed once: 10⁶ tasks to a 10⁴-slot horizon
/// through 8 shards.
fn bench_shard_population() {
    let t0 = Instant::now();
    let quanta = run_sharded(1_000_000, 8, 10_000);
    let elapsed = t0.elapsed();
    println!(
        "engine/shard_population/1m_tasks_10k_slots: {} ms for {quanta} quanta",
        elapsed.as_millis()
    );
    let ns = elapsed.as_nanos().max(1);
    criterion::record_result(BenchResult {
        name: "engine/shard_population/1m_tasks_10k_slots".to_string(),
        median_ns: ns,
        mean_ns: ns,
        iters: 1,
    });
}

/// The engine's pre-PR-10 per-task row: hot fields buried in a
/// ~300-byte struct, so a whole-set scan strides a cache line (or
/// more) per task.
struct AosTask {
    in_system: bool,
    _ran: bool,
    next_release: i64,
    _cold: [u64; 34],
}

/// The slab layout: presence as bitmap words, next releases as a flat
/// column.
struct SoaTasks {
    present: Vec<u64>,
    next_release: Vec<i64>,
}

fn aos_fixture(n: usize) -> Vec<AosTask> {
    (0..n)
        .map(|i| AosTask {
            in_system: i % 2 == 0,
            _ran: i % 3 == 0,
            next_release: (i as i64) % 509,
            _cold: [0; 34],
        })
        .collect()
}

fn soa_fixture(n: usize) -> SoaTasks {
    let mut present = vec![0u64; n.div_ceil(64)];
    for i in (0..n).step_by(2) {
        present[i / 64] |= 1u64 << (i % 64);
    }
    SoaTasks {
        present,
        next_release: (0..n).map(|i| (i as i64) % 509).collect(),
    }
}

/// The span-period question both layouts must answer per slot: the
/// earliest next release among present tasks.
fn aos_step(tasks: &[AosTask]) -> i64 {
    tasks
        .iter()
        .filter(|t| t.in_system)
        .map(|t| t.next_release)
        .min()
        .unwrap_or(i64::MAX)
}

fn soa_step(tasks: &SoaTasks) -> i64 {
    let mut min = i64::MAX;
    for (wi, &word) in tasks.present.iter().enumerate() {
        let mut rest = word;
        while rest != 0 {
            let bit = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            min = min.min(tasks.next_release[wi * 64 + bit]);
        }
    }
    min
}

fn bench_slab_layout(c: &mut Criterion) {
    let n = 100_000usize;
    let aos = aos_fixture(n);
    let soa = soa_fixture(n);
    assert_eq!(aos_step(&aos), soa_step(&soa));
    let mut group = c.benchmark_group("slab");
    group.bench_with_input(BenchmarkId::new("aos_step", "100k"), &(), |b, ()| {
        b.iter(|| black_box(aos_step(black_box(&aos))));
    });
    group.bench_with_input(BenchmarkId::new("soa_step", "100k"), &(), |b, ()| {
        b.iter(|| black_box(soa_step(black_box(&soa))));
    });
    group.finish();
}

criterion_group!(benches, bench_shard_scale, bench_slab_layout);
fn main() {
    benches();
    bench_shard_population();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
