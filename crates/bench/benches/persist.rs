//! Persistence cost: snapshot capture, restore, and journal replay.
//!
//! Checkpointing is only viable if its cost is a small, flat tax on
//! the run it protects. Each pair scales one persistence operation
//! across two sizes so the trajectory exposes super-linear growth:
//!
//! * `snapshot_{1k,10k}`: capture engine state mid-run (horizon 1k /
//!   10k slots) and serialize it to canonical text — the write half of
//!   a checkpoint.
//! * `restore_{1k,10k}`: parse the same text, re-validate every
//!   invariant, and rebuild a runnable engine — the recovery half.
//! * `journal_replay_{1k,10k}`: load and verify a 1k- / 10k-entry
//!   event journal (per-line checksums) and inject it into a restored
//!   engine — the crash-recovery tail.
//!
//! Entries land in the repo-root trajectory as
//! `persist/{snapshot,restore,journal_replay}_{1k,10k}`; CI greps for
//! the pair names.

use criterion::{criterion_group, Criterion};
use pfair_core::task::TaskId;
use pfair_obs::NoopProbe;
use pfair_persist::{read_journal, replay, snapshot_from_str, snapshot_to_string, Journal};
use pfair_sched::engine::{Engine, SimConfig};
use pfair_sched::event::{Event, EventKind, Workload};
use std::hint::black_box;

/// Eight tasks with staggered reweights and a long delay, so snapshots
/// carry pending commitments, ring overflow, and tracker state — not
/// just a quiescent queue.
fn persisted_workload(horizon: i64) -> Workload {
    let mut w = Workload::new();
    for i in 0..8u32 {
        w.join(i, i64::from(i), 1, 9 + i128::from(i));
    }
    for i in 0..4u32 {
        w.reweight(i, horizon / 3 + i64::from(i) * 7, 1, 5 + i128::from(i));
    }
    w.delay(5, horizon / 2, 600);
    w
}

/// An engine advanced to mid-run, where state is richest.
fn engine_at_mid(horizon: i64) -> Engine<NoopProbe> {
    let w = persisted_workload(horizon);
    let mut engine = Engine::new(SimConfig::oi(4, horizon), &w);
    engine.snapshot_at(horizon / 2).expect("mid-run checkpoint");
    engine
}

fn bench_persist(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist");
    for &(label, horizon) in &[("1k", 1_000i64), ("10k", 10_000)] {
        let engine = engine_at_mid(horizon);
        group.bench_function(format!("snapshot_{label}"), |b| {
            b.iter(|| {
                let snap = engine.snapshot().expect("snapshot");
                black_box(snapshot_to_string(&snap))
            });
        });

        let text = snapshot_to_string(&engine.snapshot().expect("snapshot"));
        group.bench_function(format!("restore_{label}"), |b| {
            b.iter(|| {
                let snap = snapshot_from_str(black_box(&text)).expect("parse");
                black_box(Engine::restore(snap, NoopProbe).expect("restore"))
            });
        });

        // A journal with `horizon` entries: one injected delay per slot.
        let mut path = std::env::temp_dir();
        path.push(format!(
            "pfair-bench-journal-{}-{label}.jsonl",
            std::process::id()
        ));
        let mut journal = Journal::create(&path).expect("journal");
        for slot in 0..horizon {
            journal
                .append(&Event {
                    at: slot,
                    task: TaskId(u32::try_from(slot % 8).unwrap_or(0)),
                    kind: EventKind::Delay(1),
                })
                .expect("append");
        }
        drop(journal);
        group.bench_function(format!("journal_replay_{label}"), |b| {
            b.iter(|| {
                let events = read_journal(black_box(&path)).expect("read journal");
                let snap = snapshot_from_str(&text).expect("parse");
                let mut fresh = Engine::restore(snap, NoopProbe).expect("restore");
                replay(&mut fresh, &events);
                black_box(fresh)
            });
        });
        std::fs::remove_file(&path).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_persist);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
