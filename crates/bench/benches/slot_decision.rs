//! Per-slot scheduling decision cost.
//!
//! The paper measured ≈ 5 µs per slot for all its task systems on the
//! 2.7 GHz testbed and concluded scheduling overhead is negligible
//! against a 1 ms quantum. This bench reproduces that measurement for
//! our engine: one `Engine::step` (the full slot pipeline — events,
//! releases, PD² selection, ideal bookkeeping) at Whisper scale (12
//! tasks) and beyond (48, 192 tasks). EXPERIMENTS.md records the
//! comparison against the 1 ms quantum.

use bench::uniform_workload;
use criterion::{criterion_group, BenchmarkId, Criterion};
use pfair_sched::engine::{Engine, SimConfig};
use std::hint::black_box;

fn prepared_engine(n: u32, m: u32, warm_slots: i64) -> Engine {
    let w = uniform_workload(n, m);
    let mut e = Engine::new(SimConfig::oi(m, 1_000_000), &w);
    for _ in 0..warm_slots {
        e.step();
    }
    e
}

fn bench_slot_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_decision");
    for &(n, m) in &[(12u32, 4u32), (48, 8), (192, 16)] {
        group.bench_with_input(
            BenchmarkId::new("pd2_step", format!("{n}tasks_{m}cpus")),
            &(n, m),
            |b, &(n, m)| {
                let engine = prepared_engine(n, m, 64);
                b.iter_batched(
                    || engine.clone(),
                    |mut e| {
                        e.step();
                        black_box(e.now())
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_sustained_throughput(c: &mut Criterion) {
    // Amortized cost per slot over a long run (no per-iteration clone).
    let mut group = c.benchmark_group("slot_sustained");
    group.sample_size(20);
    for &(n, m) in &[(12u32, 4u32), (48, 8)] {
        group.bench_with_input(
            BenchmarkId::new("pd2_256slots", format!("{n}tasks_{m}cpus")),
            &(n, m),
            |b, &(n, m)| {
                b.iter_batched(
                    || prepared_engine(n, m, 16),
                    |mut e| {
                        for _ in 0..256 {
                            e.step();
                        }
                        black_box(e.now())
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_slot_decision, bench_sustained_throughput);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
