//! End-to-end Whisper runs: the full Fig. 11 unit of work — workload
//! generation plus a 1,000-slot four-processor simulation — under each
//! reweighting scheme. The absolute times here bound how long the full
//! 61-run × sweep experiment matrix takes, and the OI/LJ/hybrid spread
//! is the efficiency axis of the trade-off at whole-run granularity.

use criterion::{criterion_group, BenchmarkId, Criterion};
use pfair_core::rational::rat;
use pfair_sched::reweight::{HybridPolicy, Scheme};
use std::hint::black_box;
use whisper_sim::{generate_workload, run_whisper, Scenario};

fn bench_whisper_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("whisper_run_1000_slots");
    group.sample_size(20);
    let schemes: Vec<(&str, Scheme)> = vec![
        ("oi", Scheme::Oi),
        ("lj", Scheme::LeaveJoin),
        (
            "hybrid_threshold",
            Scheme::Hybrid(HybridPolicy::MagnitudeThreshold(rat(1, 5))),
        ),
    ];
    for (label, scheme) in schemes {
        group.bench_with_input(BenchmarkId::new(label, "speed2.9"), &scheme, |b, scheme| {
            b.iter(|| {
                let sc = Scenario::new(2.9, 0.25, true, 7);
                black_box(run_whisper(&sc, scheme.clone()))
            });
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    // Workload generation alone: geometry + cost model, no scheduling.
    c.bench_function("whisper_workload_generation", |b| {
        b.iter(|| {
            let sc = Scenario::new(2.9, 0.25, true, 7);
            black_box(generate_workload(&sc).task_count())
        });
    });
}

fn bench_speed_scaling(c: &mut Criterion) {
    // Faster speakers mean more reweighting events per run: how does
    // wall time scale with adaptivity pressure?
    let mut group = c.benchmark_group("whisper_run_by_speed");
    group.sample_size(15);
    for &speed in &[0.5, 2.0, 3.5] {
        group.bench_with_input(
            BenchmarkId::new("oi", format!("{speed}mps")),
            &speed,
            |b, &speed| {
                b.iter(|| {
                    let sc = Scenario::new(speed, 0.25, true, 7);
                    black_box(run_whisper(&sc, Scheme::Oi))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_whisper_run,
    bench_workload_generation,
    bench_speed_scaling
);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
