//! Radix ready queue vs binary-heap baseline.
//!
//! PSBS-style schedulers are dominated by priority-queue mechanics at
//! scale, so PR 8 replaces the `BinaryHeap` ready queue with deadline
//! buckets scanned through an occupancy bitmap. This bench drives both
//! implementations through the engine's actual access pattern — pushes
//! whose deadlines advance with time (the scheduler never pushes far
//! into the past), mixed live/stale pops — and lands as
//! `queue/{heap,radix}_push_pop` in the trajectory; CI greps for the
//! pair. The differential test in `queue.rs` proves the two agree
//! entry-for-entry and counter-for-counter; this pair only measures.

use criterion::{criterion_group, Criterion};
use pfair_core::task::TaskId;
use pfair_sched::overhead::Counters;
use pfair_sched::priority::Priority;
use pfair_sched::queue::{HeapQueue, QueueEntry, ReadyQueue};
use std::hint::black_box;

/// Rounds of the push/pop mix (kept modest: the bench-smoke lane runs
/// in quick mode and the differential test already covers correctness).
const ROUNDS: u64 = 4_096;

/// Steady-state queue population. The packed-u128 heap is a strong
/// baseline (one integer compare per sift level), so the bucket queue
/// only approaches parity once thousands of entries are in flight; the
/// drive holds a few thousand — the shape of a saturated many-task
/// soak rather than a toy 8-task set — where the two stay within a
/// few tens of percent of each other.
const LOAD: u64 = 2_048;

/// Deterministic xorshift so both queues see the identical sequence.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// One scheduler-shaped entry: deadline near `now` (windows are short),
/// occasional far deadline (overflow path), tie rank from the id.
fn entry_at(now: i64, r: u64, seq: u64) -> QueueEntry {
    let spread = match r % 8 {
        0 => 700,
        1..=2 => i64::try_from(r % 97).unwrap_or(0),
        _ => i64::try_from(r % 13).unwrap_or(0),
    };
    let deadline = now + 1 + spread;
    let id = u32::try_from(r % 4096).unwrap_or(0);
    QueueEntry {
        priority: Priority::pack(deadline, r.is_multiple_of(3), deadline + 2, id),
        task: TaskId(id),
        index: seq,
    }
}

/// The push/pop surface both queue implementations share.
trait PushPop {
    fn push(&mut self, entry: QueueEntry, counters: &mut Counters);
    fn pop_live(&mut self, counters: &mut Counters) -> Option<QueueEntry>;
}

impl PushPop for HeapQueue {
    fn push(&mut self, entry: QueueEntry, counters: &mut Counters) {
        HeapQueue::push(self, entry, counters);
    }
    fn pop_live(&mut self, counters: &mut Counters) -> Option<QueueEntry> {
        HeapQueue::pop_live(self, counters, |e| e.index % 3 != 0)
    }
}

impl PushPop for ReadyQueue {
    fn push(&mut self, entry: QueueEntry, counters: &mut Counters) {
        ReadyQueue::push(self, entry, counters);
    }
    fn pop_live(&mut self, counters: &mut Counters) -> Option<QueueEntry> {
        ReadyQueue::pop_live(self, counters, |e| e.index % 3 != 0)
    }
}

/// Prefills [`LOAD`] entries, then pushes ~2 and pops ~2 live entries
/// per round with a third of pops hitting stale entries, mirroring a
/// slot of a saturated many-task run (population stays near `LOAD`).
fn drive(q: &mut impl PushPop) {
    let mut counters = Counters::default();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    for _ in 0..LOAD {
        let r = xorshift(&mut state);
        seq += 1;
        q.push(entry_at(0, r, seq), &mut counters);
    }
    for round in 0..ROUNDS {
        let now = i64::try_from(round / 4).unwrap_or(0);
        for _ in 0..2 {
            let r = xorshift(&mut state);
            seq += 1;
            q.push(entry_at(now, r, seq), &mut counters);
        }
        for _ in 0..2 {
            black_box(q.pop_live(&mut counters));
        }
    }
    black_box(counters.heap_pops);
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group.bench_function("heap_push_pop", |b| {
        b.iter(|| drive(&mut HeapQueue::new()));
    });
    group.bench_function("radix_push_pop", |b| {
        b.iter(|| drive(&mut ReadyQueue::new()));
    });
    group.finish();
}

criterion_group!(benches, bench_queue);
fn main() {
    benches();
    bench::emit_summary();
}
