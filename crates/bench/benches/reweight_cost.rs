//! Reweighting operation cost.
//!
//! §6 of the paper: reweighting one task costs `O(log N)` (a
//! constant number of priority-queue operations); reweighting **all**
//! `N` tasks simultaneously costs `Ω(max(N, M log N))` under PD²-OI
//! versus `O(M log N)` under PD²-LJ. This bench measures a slot that
//! carries (a) one reweighting event and (b) a simultaneous burst of
//! `N` events, for both schemes, across system sizes — the growth
//! curves EXPERIMENTS.md compares against the stated bounds.

use bench::{reweight_burst, uniform_workload};
use criterion::{criterion_group, BenchmarkId, Criterion};
use pfair_sched::engine::{Engine, SimConfig};
use pfair_sched::event::Workload;
use pfair_sched::reweight::Scheme;
use std::hint::black_box;

const BURST_AT: i64 = 32;

fn single_event_workload(n: u32, m: u32) -> Workload {
    let mut w = uniform_workload(n, m);
    let num = i128::from(m);
    let den = i128::from(4 * n.max(m));
    w.reweight(0, BURST_AT, num, den);
    w
}

/// Engine advanced to the slot *before* the events fire.
fn prepared(w: &Workload, m: u32, scheme: Scheme) -> Engine {
    let mut e = Engine::new(SimConfig::oi(m, 1_000_000).with_scheme(scheme), w);
    for _ in 0..BURST_AT {
        e.step();
    }
    e
}

fn bench_single_reweight(c: &mut Criterion) {
    let mut group = c.benchmark_group("reweight_single");
    for &n in &[16u32, 64, 256, 1024] {
        let m = 4;
        for (label, scheme) in [("oi", Scheme::Oi), ("lj", Scheme::LeaveJoin)] {
            let w = single_event_workload(n, m);
            let engine = prepared(&w, m, scheme.clone());
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter_batched(
                    || engine.clone(),
                    |mut e| {
                        e.step(); // the slot containing the one event
                        black_box(e.now())
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_simultaneous_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("reweight_burst_all_n");
    group.sample_size(30);
    for &n in &[16u32, 64, 256, 1024] {
        let m = 4;
        for (label, scheme) in [("oi", Scheme::Oi), ("lj", Scheme::LeaveJoin)] {
            let w = reweight_burst(n, m, BURST_AT);
            let engine = prepared(&w, m, scheme.clone());
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter_batched(
                    || engine.clone(),
                    |mut e| {
                        e.step(); // the slot in which all N tasks reweight
                        black_box(e.now())
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_single_reweight, bench_simultaneous_burst);
fn main() {
    benches();
    // Fold this target's numbers into the repo-root trajectory file.
    bench::emit_summary();
}
