//! # pfair-repro
//!
//! Umbrella crate for the reproduction of *Fine-Grained Task Reweighting
//! on Multiprocessors* (Block, Anderson & Bishop; the extended version
//! of the IPPS/WPDRTS 2005 "Task Reweighting on Multiprocessors:
//! Efficiency versus Accuracy" work). It re-exports the workspace crates
//! and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! * [`core`] — task model, exact arithmetic, ideal schedules, drift.
//! * [`sched`] — PD² engine with PD²-OI / PD²-LJ / hybrid reweighting,
//!   plus EPDF and EDF baselines.
//! * [`exec`] — a quantum-based real-time executor running closures
//!   on worker threads under PD² with live reweighting.
//! * [`whisper`] — the Whisper acoustic-tracking workload generator.

pub use pfair_core as core;
pub use pfair_exec as exec;
pub use pfair_sched as sched;
pub use whisper_sim as whisper;

/// Convenience prelude re-exporting the scheduler prelude.
pub mod prelude {
    pub use pfair_sched::prelude::*;
}
